package stats

import (
	"encoding/json"
	"math"
	"math/rand" //detlint:ignore detsource test-local fixed-seed source, never reaches library code
	"testing"
)

// dyadic returns a random stream whose every partial sum is exactly
// representable in float64: values are integers scaled by 2^-10 with
// magnitude < 2^21, so any sum of up to ~2^30 of them stays within the
// 53-bit exact-integer range. On such streams floating-point addition is
// associative, which lets the merge tests demand BIT-IDENTICAL means: any
// divergence is a logic bug in Merge, never rounding.
func dyadic(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(r.Intn(1<<21)-(1<<20)) / 1024.0
	}
	return xs
}

// continuous returns a random stream of arbitrary (finite) float64 values,
// where merged sums may legitimately differ from flat sums in the last ulp.
func continuous(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
	}
	return xs
}

// splitPoints cuts xs into k contiguous shards (the shape shard execution
// produces: each shard folds its own units in order, then partials merge in
// catalog order).
func split(xs []float64, k int) [][]float64 {
	if k <= 1 {
		return [][]float64{xs}
	}
	out := make([][]float64, 0, k)
	per := (len(xs) + k - 1) / k
	for lo := 0; lo < len(xs); lo += per {
		hi := lo + per
		if hi > len(xs) {
			hi = len(xs)
		}
		out = append(out, xs[lo:hi])
	}
	return out
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// roundTrip pushes v through its JSON encoding into out (a pointer to the
// zero value of the same type).
func roundTrip(t *testing.T, v, out any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
}

// TestMomentsMergePinsWholeStream is the sharding acceptance property for
// Moments: partials accumulated per shard and merged in shard order must
// reproduce the whole-stream accumulator — mean bit-identical (on exactly
// summable streams), variance within 1e-12 relative.
func TestMomentsMergePinsWholeStream(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(400)
		k := 1 + r.Intn(5)
		xs := dyadic(r, n)

		var whole Moments
		for _, x := range xs {
			whole.Add(x)
		}
		var merged Moments
		for _, part := range split(xs, k) {
			var p Moments
			for _, x := range part {
				p.Add(x)
			}
			// Exercise the JSON path on every partial: artifacts ship
			// exactly this state across the process boundary.
			var q Moments
			roundTrip(t, p, &q)
			merged.Merge(q)
		}
		if merged.N() != whole.N() {
			t.Fatalf("n=%d k=%d: merged N %d != %d", n, k, merged.N(), whole.N())
		}
		if merged.Mean() != whole.Mean() {
			t.Errorf("n=%d k=%d: merged mean %v not bit-identical to whole-stream %v",
				n, k, merged.Mean(), whole.Mean())
		}
		if e := relErr(merged.Variance(), whole.Variance()); e > 1e-12 {
			t.Errorf("n=%d k=%d: merged variance off by %v relative (> 1e-12)", n, k, e)
		}
	}
}

// TestMomentsMergeContinuousTolerance covers arbitrary float streams, where
// the merged sum may differ in the final ulp but never beyond 1e-12 relative.
func TestMomentsMergeContinuousTolerance(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		xs := continuous(r, 1+r.Intn(500))
		var whole, merged Moments
		for _, x := range xs {
			whole.Add(x)
		}
		for _, part := range split(xs, 3) {
			var p Moments
			for _, x := range part {
				p.Add(x)
			}
			merged.Merge(p)
		}
		if e := relErr(merged.Mean(), whole.Mean()); e > 1e-12 {
			t.Errorf("merged mean off by %v relative", e)
		}
		if e := relErr(merged.Variance(), whole.Variance()); e > 1e-12 {
			t.Errorf("merged variance off by %v relative", e)
		}
	}
}

// TestValueCountsMergePinsWholeStream: the multiset merge is lossless, so
// every order statistic of merged round-tripped partials must be bit-identical
// to the whole stream's.
func TestValueCountsMergePinsWholeStream(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(300)
		xs := make([]float64, n)
		for i := range xs {
			// A quantized series, like the campaign's grid-locked samples.
			xs[i] = float64(r.Intn(40)) * 0.25
		}
		var whole, merged ValueCounts
		for _, x := range xs {
			whole.Add(x)
		}
		for _, part := range split(xs, 1+r.Intn(4)) {
			var p ValueCounts
			for _, x := range part {
				p.Add(x)
			}
			var q ValueCounts
			roundTrip(t, p, &q)
			merged.Merge(q)
		}
		if merged.N() != whole.N() || merged.Distinct() != whole.Distinct() {
			t.Fatalf("merged N/distinct %d/%d != %d/%d", merged.N(), merged.Distinct(), whole.N(), whole.Distinct())
		}
		for _, p := range []float64{0, 5, 25, 50, 90, 95, 99, 100} {
			got, err1 := merged.Percentile(p)
			want, err2 := whole.Percentile(p)
			if err1 != nil || err2 != nil {
				t.Fatalf("percentile errors: %v %v", err1, err2)
			}
			if got != want {
				t.Errorf("P%v: merged %v != whole %v", p, got, want)
			}
		}
		for _, x := range []float64{0.25, 3, 7.5} {
			if merged.FractionBelow(x) != whole.FractionBelow(x) ||
				merged.FractionAbove(x) != whole.FractionAbove(x) {
				t.Errorf("fractions at %v diverge after merge", x)
			}
		}
	}
}

// TestDistMergePinsWholeStream checks the composite the study partials
// actually ship: exact mean (dyadic), exact quantiles, variance tolerance.
func TestDistMergePinsWholeStream(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		xs := dyadic(r, 1+r.Intn(250))
		var whole, merged Dist
		for _, x := range xs {
			whole.Add(x)
		}
		for _, part := range split(xs, 1+r.Intn(4)) {
			var p Dist
			for _, x := range part {
				p.Add(x)
			}
			var q Dist
			roundTrip(t, p, &q)
			merged.Merge(q)
		}
		if merged.Mean() != whole.Mean() {
			t.Errorf("merged Dist mean %v not bit-identical to %v", merged.Mean(), whole.Mean())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Errorf("merged extremes (%v,%v) != (%v,%v)", merged.Min(), merged.Max(), whole.Min(), whole.Max())
		}
		gs, err1 := merged.Summary()
		ws, err2 := whole.Summary()
		if err1 != nil || err2 != nil {
			t.Fatalf("summary errors: %v %v", err1, err2)
		}
		if gs.P50 != ws.P50 || gs.P90 != ws.P90 || gs.P95 != ws.P95 || gs.P99 != ws.P99 {
			t.Errorf("merged quantiles %+v != whole %+v", gs, ws)
		}
		if e := relErr(gs.StdDev*gs.StdDev, ws.StdDev*ws.StdDev); e > 1e-12 {
			t.Errorf("merged variance off by %v relative", e)
		}
	}
}

// TestMinMaxAndFractionMergePinWholeStream covers the two counting
// accumulators' merge + round-trip in one sweep.
func TestMinMaxAndFractionMergePinWholeStream(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := continuous(r, 333)
	var wholeM, mergedM MinMax
	wholeF := NewFraction(10)
	mergedF := NewFraction(10)
	for _, x := range xs {
		wholeM.Add(x)
		wholeF.Add(x)
	}
	for _, part := range split(xs, 4) {
		var pm MinMax
		pf := NewFraction(10)
		for _, x := range part {
			pm.Add(x)
			pf.Add(x)
		}
		var qm MinMax
		var qf Fraction
		roundTrip(t, pm, &qm)
		roundTrip(t, pf, &qf)
		mergedM.Merge(qm)
		if err := mergedF.Merge(qf); err != nil {
			t.Fatal(err)
		}
	}
	gmin, _ := mergedM.Min()
	wmin, _ := wholeM.Min()
	gmax, _ := mergedM.Max()
	wmax, _ := wholeM.Max()
	if gmin != wmin || gmax != wmax || mergedM.N() != wholeM.N() {
		t.Errorf("MinMax merge diverged: (%v,%v,%d) != (%v,%v,%d)", gmin, gmax, mergedM.N(), wmin, wmax, wholeM.N())
	}
	if mergedF.Below() != wholeF.Below() || mergedF.Above() != wholeF.Above() {
		t.Errorf("Fraction merge diverged: below %v/%v above %v/%v",
			mergedF.Below(), wholeF.Below(), mergedF.Above(), wholeF.Above())
	}
	if err := mergedF.Merge(NewFraction(11)); err == nil {
		t.Error("merging mismatched thresholds must error")
	}
}

// TestStreamingHistogramMergePinsWholeStream covers the fixed-bin accumulator.
func TestStreamingHistogramMergePinsWholeStream(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	xs := continuous(r, 400)
	whole, err := NewStreamingHistogram(0, 20, 16)
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := NewStreamingHistogram(0, 20, 16)
	for _, x := range xs {
		if err := whole.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, part := range split(xs, 3) {
		p, _ := NewStreamingHistogram(0, 20, 16)
		for _, x := range part {
			if err := p.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		var q StreamingHistogram
		roundTrip(t, p, &q)
		if err := merged.Merge(&q); err != nil {
			t.Fatal(err)
		}
	}
	g, w := merged.Histogram(), whole.Histogram()
	if g.Total != w.Total {
		t.Fatalf("totals %d != %d", g.Total, w.Total)
	}
	for i := range g.Bins {
		if g.Bins[i] != w.Bins[i] {
			t.Errorf("bin %d: %+v != %+v", i, g.Bins[i], w.Bins[i])
		}
	}
	other, _ := NewStreamingHistogram(0, 10, 16)
	if err := merged.Merge(other); err == nil {
		t.Error("merging mismatched layouts must error")
	}
}

// TestAccumulatorJSONRoundTripEmptyAndResume: empty accumulators round-trip
// to working zero values, and accumulation can RESUME after a round trip with
// results identical to never having serialized.
func TestAccumulatorJSONRoundTripEmptyAndResume(t *testing.T) {
	var em Moments
	var got Moments
	roundTrip(t, em, &got)
	if got.N() != 0 || got.Mean() != 0 {
		t.Errorf("empty Moments round-trip: %+v", got)
	}

	var ev ValueCounts
	var gotV ValueCounts
	roundTrip(t, ev, &gotV)
	if gotV.N() != 0 {
		t.Errorf("empty ValueCounts round-trip: N=%d", gotV.N())
	}
	gotV.Add(1) // must be usable after decode

	r := rand.New(rand.NewSource(13))
	xs := dyadic(r, 100)
	var plain, resumed Dist
	for _, x := range xs[:50] {
		plain.Add(x)
		resumed.Add(x)
	}
	var thawed Dist
	roundTrip(t, resumed, &thawed)
	for _, x := range xs[50:] {
		plain.Add(x)
		thawed.Add(x)
	}
	if thawed.Mean() != plain.Mean() || thawed.N() != plain.N() {
		t.Errorf("resumed accumulation diverged: mean %v/%v n %d/%d",
			thawed.Mean(), plain.Mean(), thawed.N(), plain.N())
	}
	p1, _ := plain.Percentile(90)
	p2, _ := thawed.Percentile(90)
	if p1 != p2 {
		t.Errorf("resumed P90 %v != %v", p2, p1)
	}
}

// TestValueCountsNonFiniteRoundTrip: the quarantine counter survives the wire.
func TestValueCountsNonFiniteRoundTrip(t *testing.T) {
	var v ValueCounts
	v.Add(1)
	v.Add(math.NaN())
	var got ValueCounts
	roundTrip(t, v, &got)
	if _, err := got.Percentile(50); err == nil {
		t.Error("non-finite contamination lost in round trip")
	}
}

// TestValueCountsRejectsCorruptEncodings: decode validates the invariants the
// accumulator maintains, so a corrupt artifact fails loudly instead of
// producing silently-wrong statistics.
func TestValueCountsRejectsCorruptEncodings(t *testing.T) {
	for _, bad := range []string{
		`{"values":[1,2],"counts":[1]}`,               // length mismatch
		`{"values":[1],"counts":[0]}`,                 // non-positive count
		`{"values":[1],"counts":[-2]}`,                // negative count
		`{"values":[1,1],"counts":[1,1]}`,             // duplicate value
		`{"values":[1],"counts":[1],"non_finite":-1}`, // negative quarantine
	} {
		var v ValueCounts
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Errorf("corrupt encoding accepted: %s", bad)
		}
	}
	var m Moments
	if err := json.Unmarshal([]byte(`{"n":-1}`), &m); err == nil {
		t.Error("negative-n Moments accepted")
	}
	var h StreamingHistogram
	if err := json.Unmarshal([]byte(`{"lo":0,"hi":0,"bins":[1]}`), &h); err == nil {
		t.Error("degenerate histogram bounds accepted")
	}
	if err := json.Unmarshal([]byte(`{"lo":0,"hi":1,"bins":[-1]}`), &h); err == nil {
		t.Error("negative histogram bin accepted")
	}
	var f Fraction
	if err := json.Unmarshal([]byte(`{"threshold":1,"n":1,"below":2,"above":0}`), &f); err == nil {
		t.Error("inconsistent Fraction counts accepted")
	}
}
