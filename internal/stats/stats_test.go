package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
		{"typical", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got, err := CV(xs); err != nil || !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("CV = %v (%v), want 0.4", got, err)
	}
	if _, err := CV([]float64{0, 0}); err != ErrZeroMean {
		t.Errorf("CV of zero-mean sample err = %v, want ErrZeroMean", err)
	}
	if _, err := CV([]float64{-1, 1}); err != ErrZeroMean {
		t.Errorf("CV of cancelling sample err = %v, want ErrZeroMean", err)
	}
	if _, err := CV(nil); err != ErrEmpty {
		t.Errorf("CV(nil) err = %v, want ErrEmpty", err)
	}
	// CV uses |mean| so a negative-mean sample still gets a positive CV.
	if got, err := CV([]float64{-4, -6}); err != nil || got <= 0 {
		t.Errorf("CV of negative sample = %v (%v), want > 0", got, err)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	xs := []float64{3, -1, 7, 2}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", mn, mx)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) succeeded, want error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) succeeded, want error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestCI(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	ci, err := CI(xs, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ci.Lo, 5, 1e-9) || !almostEqual(ci.Hi, 95, 1e-9) {
		t.Errorf("90%% CI = [%v, %v], want [5, 95]", ci.Lo, ci.Hi)
	}
	if !almostEqual(ci.Mean, 50, 1e-9) {
		t.Errorf("CI mean = %v, want 50", ci.Mean)
	}
	if _, err := CI(nil, 0.9); err != ErrEmpty {
		t.Errorf("CI(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := CI(xs, 0); err == nil {
		t.Error("CI(level=0) succeeded, want error")
	}
	if _, err := CI(xs, 1); err == nil {
		t.Error("CI(level=1) succeeded, want error")
	}
}

func TestHistogramBasic(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.0}
	h, err := NewHistogram(xs, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 5 {
		t.Errorf("Total = %d, want 5", h.Total)
	}
	if h.Bins[0].Count != 2 { // 0.1 and 0.2 in [0,0.5); 0.5 goes to bin 1
		t.Errorf("bin0 count = %d, want 2", h.Bins[0].Count)
	}
	if h.Bins[0].Count+h.Bins[1].Count != 5 {
		t.Errorf("counts don't sum to total: %d + %d", h.Bins[0].Count, h.Bins[1].Count)
	}
	var fracSum float64
	for _, b := range h.Bins {
		fracSum += b.Fraction
	}
	if !almostEqual(fracSum, 1, 1e-12) {
		t.Errorf("fractions sum to %v, want 1", fracSum)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	xs := []float64{-5, 0.5, 99}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0].Count != 1 {
		t.Errorf("low outlier not clamped into first bin: %+v", h.Bins)
	}
	if h.Bins[3].Count != 1 {
		t.Errorf("high outlier not clamped into last bin: %+v", h.Bins)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("empty range (lo == hi) accepted")
	}
	if _, err := NewHistogram(nil, 2, 1, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewHistogram(nil, math.NaN(), 1, 3); err == nil {
		t.Error("NaN low bound accepted")
	}
	if _, err := NewHistogram(nil, 0, math.Inf(1), 3); err == nil {
		t.Error("infinite high bound accepted")
	}
	if _, err := NewHistogram([]float64{0.5, math.NaN()}, 0, 1, 3); err == nil {
		t.Error("NaN sample accepted")
	}
	if _, err := NewHistogram([]float64{math.Inf(-1)}, 0, 1, 3); err == nil {
		t.Error("infinite sample accepted")
	}
}

func TestHistogramMode(t *testing.T) {
	xs := []float64{0.1, 0.1, 0.1, 0.8}
	h, err := NewHistogram(xs, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mode := h.Mode()
	if mode.Count != 3 || mode.Lo != 0 {
		t.Errorf("Mode = %+v, want first bin with count 3", mode)
	}
	var empty Histogram
	if got := empty.Mode(); got.Count != 0 {
		t.Errorf("Mode of empty histogram = %+v", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 4, 6}
	got := Normalize(xs, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if xs[0] != 2 {
		t.Error("Normalize mutated input")
	}
	zero := Normalize(xs, 0)
	for i, v := range zero {
		if v != 0 {
			t.Errorf("Normalize by 0 produced non-zero at %d: %v", i, v)
		}
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{0.5, 1.0, 1.5, 2.0}
	if got := FractionBelow(xs, 1.0); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("FractionBelow = %v, want 0.25", got)
	}
	if got := FractionAbove(xs, 1.0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("FractionAbove = %v, want 0.5", got)
	}
	if FractionBelow(nil, 1) != 0 || FractionAbove(nil, 1) != 0 {
		t.Error("fractions of empty sample should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean of negative accepted")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Errorf("GeoMean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEqual(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEqual(s.P50, 5.5, 1e-9) {
		t.Errorf("P50 = %v, want 5.5", s.P50)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestQuickPercentileWithinBounds(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v, err := Percentile(xs, p)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return v >= mn-1e-9 && v <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		h, err := NewHistogram(xs, -1, 1, 8)
		if err != nil {
			return false
		}
		total := 0
		for _, b := range h.Bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeRoundTrip(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		norm := Normalize(xs, 4)
		for i := range xs {
			if !almostEqual(norm[i]*4, xs[i], 1e-9*math.Max(1, math.Abs(xs[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
