package attack

import (
	"testing"

	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

func testGeometry() physics.Geometry {
	return physics.Geometry{Banks: 1, RowsPerBank: 2048, RowBytes: 512, SubarrayRows: 512}
}

func newCtrl(t *testing.T, opts ...dram.Option) *softmc.Controller {
	t.Helper()
	p, ok := physics.ProfileByName("B0") // weakest HCfirst, flips readily
	if !ok {
		t.Fatal("no profile B0")
	}
	opts = append([]dram.Option{dram.WithScheme(mapping.Direct{})}, opts...)
	return softmc.New(dram.NewModule(p, testGeometry(), 11, opts...))
}

func target(victim int) Target {
	return Target{Bank: 0, Victim: victim, AggLo: victim - 1, AggHi: victim + 1}
}

// sumFlips aggregates an attack over several victims (per-row strength
// varies widely).
func sumFlips(t *testing.T, ctrl *softmc.Controller, pat Pattern, budget, refEvery int) int {
	t.Helper()
	total := 0
	for _, v := range []int{100, 140, 180, 220, 260} {
		res, err := Execute(ctrl, target(v), pat, budget, refEvery)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Flips
	}
	return total
}

func TestDoubleSidedBeatsSingleSided(t *testing.T) {
	ctrl := newCtrl(t)
	const budget = 120_000
	ds := sumFlips(t, ctrl, DoubleSided{}, budget, 0)
	ss := sumFlips(t, ctrl, SingleSided{}, budget, 0)
	if ds == 0 {
		t.Fatal("double-sided attack flipped nothing")
	}
	if ss >= ds {
		t.Errorf("single-sided (%d) >= double-sided (%d) at equal budget", ss, ds)
	}
}

func TestManySidedWeakerPerVictim(t *testing.T) {
	ctrl := newCtrl(t)
	const budget = 120_000
	ds := sumFlips(t, ctrl, DoubleSided{}, budget, 0)
	ms := sumFlips(t, ctrl, ManySided{Pairs: 4}, budget, 0)
	if ms >= ds {
		t.Errorf("many-sided (%d) >= double-sided (%d): budget splitting should dilute", ms, ds)
	}
}

func TestMisraGriesTRRStopsDoubleSided(t *testing.T) {
	starved := newCtrl(t, dram.WithTRR(16))
	flipsStarved := sumFlips(t, starved, DoubleSided{}, 200_000, 0)
	if flipsStarved == 0 {
		t.Fatal("starved attack flipped nothing; raise the budget")
	}
	defended := newCtrl(t, dram.WithTRR(16))
	flipsDefended := sumFlips(t, defended, DoubleSided{}, 200_000, 4000)
	if flipsDefended >= flipsStarved {
		t.Errorf("MG TRR with REFs (%d flips) not below starved (%d)", flipsDefended, flipsStarved)
	}
}

func TestDecoyFloodDilutesSamplingTRR(t *testing.T) {
	const budget = 400_000
	const refEvery = 4000

	// Against the sampling tracker, the decoy flood must cause more victim
	// flips than an honest double-sided attack of the same total budget,
	// despite spending 30% of its activations on decoys.
	honest := newCtrl(t, dram.WithSamplingTRR(1.0/64, 5))
	honestFlips := sumFlips(t, honest, DoubleSided{}, budget, refEvery)

	evading := newCtrl(t, dram.WithSamplingTRR(1.0/64, 5))
	evadeFlips := sumFlips(t, evading, DecoyFlood{}, budget, refEvery)

	if evadeFlips <= honestFlips {
		t.Errorf("decoy flood (%d flips) did not beat honest double-sided (%d) against a sampler",
			evadeFlips, honestFlips)
	}
}

func TestMisraGriesResistsDecoyFlood(t *testing.T) {
	const budget = 400_000
	const refEvery = 4000

	mg := newCtrl(t, dram.WithTRR(16))
	mgFlips := sumFlips(t, mg, DecoyFlood{}, budget, refEvery)

	sampler := newCtrl(t, dram.WithSamplingTRR(1.0/64, 5))
	samplerFlips := sumFlips(t, sampler, DecoyFlood{}, budget, refEvery)

	// The counter-based tracker keeps the true heavy hitter; the sampler is
	// diluted. Same attack, same budget: MG must let through fewer flips.
	if mgFlips >= samplerFlips {
		t.Errorf("MG tracker (%d flips) not better than sampler (%d) under decoy flood",
			mgFlips, samplerFlips)
	}
}

func TestExecuteValidatesTarget(t *testing.T) {
	ctrl := newCtrl(t)
	bad := Target{Bank: 0, Victim: 100, AggLo: 100, AggHi: 101}
	if _, err := Execute(ctrl, bad, DoubleSided{}, 1000, 0); err == nil {
		t.Error("victim==aggressor accepted")
	}
}

func TestPatternNames(t *testing.T) {
	names := map[string]Pattern{
		"single-sided": SingleSided{},
		"double-sided": DoubleSided{},
		"many-sided-4": ManySided{Pairs: 4},
		"decoy-flood":  DecoyFlood{},
	}
	for want, p := range names {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestRefEveryZeroMeansStarved(t *testing.T) {
	// With refEvery=0 no REF is ever issued, so a TRR-equipped module
	// behaves exactly like an undefended one.
	plain := newCtrl(t)
	trr := newCtrl(t, dram.WithTRR(16))
	const budget = 150_000
	if a, b := sumFlips(t, plain, DoubleSided{}, budget, 0), sumFlips(t, trr, DoubleSided{}, budget, 0); a != b {
		t.Errorf("starved TRR module differs from undefended: %d vs %d", b, a)
	}
}
