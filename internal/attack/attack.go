// Package attack implements a library of RowHammer attack shapes against the
// simulated module: single-sided, double-sided (the paper's methodology
// choice), TRRespass-style many-sided budget splitting, and decoy flooding
// aimed at diluting sampling-based in-DRAM trackers. It powers the
// attack/defense extension experiments beyond the paper's own evaluation.
package attack

import (
	"errors"
	"fmt"

	"github.com/dramstudy/rhvpp/internal/pattern"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

// Target names a victim row and its double-sided aggressor pair.
type Target struct {
	Bank   int
	Victim int
	AggLo  int
	AggHi  int
}

// ErrBadTarget is returned for incomplete targets.
var ErrBadTarget = errors.New("attack: invalid target")

// Pattern is one attack shape. Run spends up to budget total activations
// attacking the target. If refEvery > 0, one REF command is issued after
// every refEvery activations, letting any in-DRAM TRR engine defend; the
// paper's methodology starves TRR with refEvery = 0.
type Pattern interface {
	Name() string
	Run(ctrl *softmc.Controller, tgt Target, budget, refEvery int) error
}

// chunks iterates an activation budget in REF-aligned chunks.
func chunks(budget, refEvery int, emit func(n int) error, ref func() error) error {
	if refEvery <= 0 {
		return emit(budget)
	}
	for budget > 0 {
		n := refEvery
		if n > budget {
			n = budget
		}
		if err := emit(n); err != nil {
			return err
		}
		if err := ref(); err != nil {
			return err
		}
		budget -= n
	}
	return nil
}

// SingleSided hammers only the lower aggressor.
type SingleSided struct{}

// Name implements Pattern.
func (SingleSided) Name() string { return "single-sided" }

// Run implements Pattern.
func (SingleSided) Run(ctrl *softmc.Controller, tgt Target, budget, refEvery int) error {
	return chunks(budget, refEvery,
		func(n int) error { return ctrl.Hammer(tgt.Bank, tgt.AggLo, n) },
		ctrl.Refresh)
}

// DoubleSided alternates the two adjacent aggressors — the most effective
// shape against undefended DRAM (§4.2).
type DoubleSided struct{}

// Name implements Pattern.
func (DoubleSided) Name() string { return "double-sided" }

// Run implements Pattern.
func (DoubleSided) Run(ctrl *softmc.Controller, tgt Target, budget, refEvery int) error {
	return chunks(budget, refEvery,
		func(n int) error { return ctrl.HammerDoubleSided(tgt.Bank, tgt.AggLo, tgt.AggHi, n/2) },
		ctrl.Refresh)
}

// ManySided splits the budget across Pairs aggressor pairs spread through
// the bank (TRRespass style): each victim sees less disturbance, but
// counter-starved trackers may miss all of them.
type ManySided struct {
	Pairs  int
	Stride int
}

// Name implements Pattern.
func (m ManySided) Name() string { return fmt.Sprintf("many-sided-%d", m.Pairs) }

// Run implements Pattern.
func (m ManySided) Run(ctrl *softmc.Controller, tgt Target, budget, refEvery int) error {
	pairs := m.Pairs
	if pairs < 1 {
		pairs = 4
	}
	stride := m.Stride
	if stride < 4 {
		stride = 32
	}
	rowsPerBank := ctrl.Module().Geometry().RowsPerBank
	return chunks(budget, refEvery,
		func(n int) error {
			// Scale this chunk's share across all pairs.
			share := n / pairs
			if share < 2 {
				share = 2
			}
			for p := 0; p < pairs; p++ {
				lo, hi := tgt.AggLo+p*stride, tgt.AggHi+p*stride
				if hi >= rowsPerBank {
					break
				}
				if err := ctrl.HammerDoubleSided(tgt.Bank, lo, hi, share/2); err != nil {
					return err
				}
			}
			return nil
		},
		ctrl.Refresh)
}

// DecoyFlood hammers the real pair with most of the budget while spraying
// the remainder over many decoy rows, diluting sampling-based TRR trackers
// so their REFs protect the wrong victims.
type DecoyFlood struct {
	// DecoyFraction of the budget goes to decoys (default 0.3).
	DecoyFraction float64
	// Decoys is the number of decoy rows (default 24).
	Decoys int
}

// Name implements Pattern.
func (d DecoyFlood) Name() string { return "decoy-flood" }

// Run implements Pattern.
func (d DecoyFlood) Run(ctrl *softmc.Controller, tgt Target, budget, refEvery int) error {
	frac := d.DecoyFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.3
	}
	decoys := d.Decoys
	if decoys < 1 {
		decoys = 24
	}
	rowsPerBank := ctrl.Module().Geometry().RowsPerBank
	return chunks(budget, refEvery,
		func(n int) error {
			real := int(float64(n) * (1 - frac))
			if err := ctrl.HammerDoubleSided(tgt.Bank, tgt.AggLo, tgt.AggHi, real/2); err != nil {
				return err
			}
			perDecoy := (n - real) / decoys
			if perDecoy < 1 {
				perDecoy = 1
			}
			for i := 0; i < decoys; i++ {
				row := (tgt.AggHi + 64 + i*7) % rowsPerBank
				if err := ctrl.Hammer(tgt.Bank, row, perDecoy); err != nil {
					return err
				}
			}
			return nil
		},
		ctrl.Refresh)
}

// Result reports one attack execution.
type Result struct {
	Pattern string
	Flips   int
	BER     float64
}

// Execute initializes the victim (0xFF) and aggressors (0x00), runs the
// attack, reads the victim back, and reports the damage.
func Execute(ctrl *softmc.Controller, tgt Target, pat Pattern, budget, refEvery int) (Result, error) {
	if tgt.Victim == tgt.AggLo || tgt.Victim == tgt.AggHi {
		return Result{}, ErrBadTarget
	}
	const fill = 0xFF
	if err := ctrl.InitializeRow(tgt.Bank, tgt.Victim, fill); err != nil {
		return Result{}, err
	}
	for _, agg := range []int{tgt.AggLo, tgt.AggHi} {
		if err := ctrl.InitializeRow(tgt.Bank, agg, 0x00); err != nil {
			return Result{}, err
		}
	}
	if err := pat.Run(ctrl, tgt, budget, refEvery); err != nil {
		return Result{}, err
	}
	data, err := ctrl.ReadRowSafe(tgt.Bank, tgt.Victim)
	if err != nil {
		return Result{}, err
	}
	flips := pattern.RowStripeFF.CountMismatch(data)
	return Result{
		Pattern: pat.Name(),
		Flips:   flips,
		BER:     float64(flips) / float64(len(data)*8),
	}, nil
}
