package pool

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestRunPreservesOrder(t *testing.T) {
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	for _, jobs := range []int{1, 3, 8, 64} {
		out, err := Run(context.Background(), jobs, items,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d", jobs, i, v)
			}
		}
	}
}

func TestRunReportsLowestIndexFailure(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := errors.New("boom")
	_, err := Run(context.Background(), 4, items, func(_ context.Context, i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("item %d: %w", i, boom)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	_, err := Run(ctx, 4, []int{1, 2, 3}, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() > 3 {
		t.Fatalf("%d calls after cancellation", calls.Load())
	}
}

func TestRunEmptyAndSerial(t *testing.T) {
	out, err := Run(context.Background(), 4, nil,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v, %v", out, err)
	}
	serial, err := Run(context.Background(), 1, []int{5, 6},
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil || !reflect.DeepEqual(serial, []int{6, 7}) {
		t.Fatalf("serial run: %v, %v", serial, err)
	}
}
