package pool

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesOrder(t *testing.T) {
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	for _, jobs := range []int{1, 3, 8, 64} {
		out, err := Run(context.Background(), jobs, items,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d", jobs, i, v)
			}
		}
	}
}

func TestRunReportsLowestIndexFailure(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := errors.New("boom")
	_, err := Run(context.Background(), 4, items, func(_ context.Context, i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("item %d: %w", i, boom)
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int32
	_, err := Run(ctx, 4, []int{1, 2, 3}, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() > 3 {
		t.Fatalf("%d calls after cancellation", calls.Load())
	}
}

func TestRunEmptyAndSerial(t *testing.T) {
	out, err := Run(context.Background(), 4, nil,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v, %v", out, err)
	}
	serial, err := Run(context.Background(), 1, []int{5, 6},
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil || !reflect.DeepEqual(serial, []int{6, 7}) {
		t.Fatalf("serial run: %v, %v", serial, err)
	}
}

func TestRunOrderedDeliversInOrder(t *testing.T) {
	for _, jobs := range []int{1, 3, 8, 64} {
		var got []int
		err := RunOrdered(context.Background(), jobs, 50,
			func(_ context.Context, i int) (int, error) {
				if i%7 == 0 {
					time.Sleep(time.Millisecond) // skew workers
				}
				return i * i, nil
			},
			func(i, out int) error {
				got = append(got, out)
				return nil
			})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != 50 {
			t.Fatalf("jobs=%d: consumed %d results", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: out-of-order delivery at %d: %d", jobs, i, v)
			}
		}
	}
}

// TestRunOrderedBoundsInFlight asserts the reorder window: outstanding
// (produced but unconsumed) results never exceed 2*jobs + jobs, even with a
// deliberately slow consumer — the memory bound the streaming aggregation
// relies on.
func TestRunOrderedBoundsInFlight(t *testing.T) {
	const jobs = 4
	var produced, consumed atomic.Int32
	var worst int32
	err := RunOrdered(context.Background(), jobs, 200,
		func(_ context.Context, i int) (int, error) {
			produced.Add(1)
			return i, nil
		},
		func(i, out int) error {
			if i < 5 {
				time.Sleep(2 * time.Millisecond) // hold the window open
			}
			if d := produced.Load() - consumed.Load(); d > worst {
				worst = d
			}
			consumed.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if limit := int32(3*jobs + 1); worst > limit {
		t.Errorf("in-flight results peaked at %d, want <= %d", worst, limit)
	}
}

func TestRunOrderedReportsLowestIndexFailure(t *testing.T) {
	boom := errors.New("boom")
	var consumedMax int
	err := RunOrdered(context.Background(), 4, 32,
		func(_ context.Context, i int) (int, error) {
			if i >= 9 {
				return 0, fmt.Errorf("item %d: %w", i, boom)
			}
			return i, nil
		},
		func(i, out int) error {
			consumedMax = i
			return nil
		})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "item 9") {
		t.Fatalf("err = %v, want item 9 boom (the lowest failing index)", err)
	}
	if consumedMax != 8 {
		t.Errorf("consumed through %d, want 8", consumedMax)
	}
}

func TestRunOrderedConsumeErrorStopsWork(t *testing.T) {
	boom := errors.New("fold failed")
	err := RunOrdered(context.Background(), 4, 100,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, out int) error {
			if i == 10 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fold error", err)
	}
}

func TestRunOrderedHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunOrdered(ctx, 4, 10,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, out int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := RunOrdered(context.Background(), 4, 0,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, out int) error { return nil }); err != nil {
		t.Fatalf("empty ordered run: %v", err)
	}
}

// TestRunOrderedAllocsIndependentOfN is the runtime witness for the
// //detlint:hotpath contract on RunOrdered: the pool allocates O(jobs) at
// setup and nothing per delivered result, so total allocations do not grow
// with n, and the serial path allocates nothing at all.
func TestRunOrderedAllocsIndependentOfN(t *testing.T) {
	run := func(n int) float64 {
		return testing.AllocsPerRun(5, func() {
			sum := 0
			err := RunOrdered(context.Background(), 4, n,
				func(_ context.Context, i int) (int, error) { return i, nil },
				func(_ int, out int) error { sum += out; return nil })
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(64), run(1024)
	// A per-result allocation would add ~960 here; the slack only absorbs
	// runtime noise (sudog cache refills, goroutine stack growth).
	if large > small+32 {
		t.Errorf("allocs grew with n: n=64 -> %v, n=1024 -> %v", small, large)
	}
	if serial := testing.AllocsPerRun(10, func() {
		err := RunOrdered(context.Background(), 1, 128,
			func(_ context.Context, i int) (int, error) { return i, nil },
			func(int, int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	}); serial > 0 {
		t.Errorf("serial RunOrdered allocates %v per call, want 0", serial)
	}
}
