// Package pool provides the bounded worker pool shared by the experiment
// drivers (module sweeps) and the SPICE Monte-Carlo campaign. Results land
// at the index of their item, so callers observe the same stable order
// regardless of the worker count — the property the repository's
// byte-identical-output guarantee rests on.
package pool

import (
	"context"
	"errors"
	"sync"
)

// Run maps fn over items with at most jobs concurrent workers. Results land
// at the index of their item, so callers observe the same stable order
// regardless of the worker count; the first failure cancels the remaining
// work. With jobs <= 1 the pool degenerates to a plain serial loop on the
// calling goroutine.
func Run[In, Out any](ctx context.Context, jobs int, items []In,
	fn func(ctx context.Context, item In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	if jobs <= 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			res, err := fn(ctx, item)
			if err != nil {
				return out, err
			}
			out[i] = res
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(items))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := fn(ctx, items[i])
				if err != nil {
					errs[i] = err
					cancel() // stop handing out new items
					continue
				}
				out[i] = res
			}
		}()
	}
feed:
	for i := range items {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	// The caller's cancellation wins; otherwise prefer the lowest-index
	// genuine failure over cancellation fallout from our own cancel().
	if err := parent.Err(); err != nil {
		return out, err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return out, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
