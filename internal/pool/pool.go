package pool

import (
	"context"
	"errors"
	"sync"
)

// Run maps fn over items with at most jobs concurrent workers. Results land
// at the index of their item, so callers observe the same stable order
// regardless of the worker count; the first failure cancels the remaining
// work. With jobs <= 1 the pool degenerates to a plain serial loop on the
// calling goroutine.
func Run[In, Out any](ctx context.Context, jobs int, items []In,
	fn func(ctx context.Context, item In) (Out, error)) ([]Out, error) {
	out := make([]Out, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	if jobs <= 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			res, err := fn(ctx, item)
			if err != nil {
				return out, err
			}
			out[i] = res
		}
		return out, nil
	}

	// The pool's cancelable context lives in a new variable: reassigning the
	// ctx parameter would make the worker closures capture it by reference,
	// heap-allocating the parameter at entry — a cost even the serial path
	// above would pay on every call.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(items))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := fn(wctx, items[i])
				if err != nil {
					errs[i] = err
					cancel() // stop handing out new items
					continue
				}
				out[i] = res
			}
		}()
	}
feed:
	for i := range items {
		select {
		case next <- i:
		case <-wctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	// The caller's cancellation wins; otherwise prefer the lowest-index
	// genuine failure over cancellation fallout from our own cancel().
	if err := ctx.Err(); err != nil {
		return out, err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return out, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// RunOrdered maps fn over the indices [0, n) with at most jobs concurrent
// workers and delivers each result to consume in STRICT INDEX ORDER on the
// calling goroutine. Unlike Run, it never materializes the result set: at
// most 2*jobs results are in flight at once (a bounded reorder window), so
// aggregation memory is independent of n — the property the streaming
// statistics pipeline's O(1)-per-estimator bound rests on, while index-order
// delivery keeps the floating-point fold order (and hence the output bytes)
// identical at any worker count.
//
// The first fn or consume error — always the lowest-index one, because
// consumption is in order — cancels the remaining work and is returned;
// the caller's cancellation takes precedence. With jobs <= 1 the pool
// degenerates to a plain serial loop on the calling goroutine.
//
//detlint:hotpath witness=TestRunOrderedAllocsIndependentOfN
func RunOrdered[Out any](ctx context.Context, jobs, n int,
	fn func(ctx context.Context, i int) (Out, error),
	consume func(i int, out Out) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			out, err := fn(ctx, i)
			if err != nil {
				return err
			}
			if err := consume(i, out); err != nil {
				return err
			}
		}
		return nil
	}

	// As in Run, the cancelable context gets its own variable so the ctx
	// parameter stays capture-by-value and the serial path stays 0-alloc.
	wctx, cancel := context.WithCancel(ctx) //detlint:ignore hotalloc O(jobs) setup, amortized across the n runs
	defer cancel()

	type slot struct {
		out Out
		err error
	}
	// The reorder window: the feeder acquires a token per issued index and
	// the consumer releases one per consumed index, so at most `window`
	// indices are outstanding. That guarantees at most one outstanding index
	// per ring residue — each ring channel (capacity 1) is a private
	// rendezvous for exactly one pending index — and bounds memory at
	// O(jobs) results regardless of worker skew.
	window := 2 * jobs
	ring := make([]chan slot, window) //detlint:ignore hotalloc O(jobs) setup, amortized across the n runs
	for i := range ring {
		ring[i] = make(chan slot, 1) //detlint:ignore hotalloc O(jobs) setup, amortized across the n runs
	}
	tokens := make(chan struct{}, window) //detlint:ignore hotalloc O(jobs) setup, amortized across the n runs
	next := make(chan int)                //detlint:ignore hotalloc O(jobs) setup, amortized across the n runs

	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() { //detlint:ignore hotalloc O(jobs) worker setup, amortized across the n runs
			defer wg.Done()
			for i := range next {
				out, err := fn(wctx, i)
				select {
				case ring[i%window] <- slot{out, err}:
				case <-wctx.Done():
					return
				}
			}
		}()
	}
	go func() { //detlint:ignore hotalloc one feeder goroutine, amortized across the n runs
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case tokens <- struct{}{}:
			case <-wctx.Done():
				return
			}
			select {
			case next <- i:
			case <-wctx.Done():
				return
			}
		}
	}()

	var firstErr error
consumeLoop:
	for i := 0; i < n; i++ {
		select {
		case s := <-ring[i%window]:
			if s.err != nil {
				firstErr = s.err
				break consumeLoop
			}
			if err := consume(i, s.out); err != nil {
				firstErr = err
				break consumeLoop
			}
			<-tokens
		case <-wctx.Done():
			break consumeLoop
		}
	}
	cancel()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
