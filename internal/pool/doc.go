// Package pool provides the bounded worker pool shared by the experiment
// drivers (module sweeps) and the SPICE Monte-Carlo campaign.
//
// # Ordering invariants
//
// Both entry points guarantee that the worker count can never change what a
// caller observes — the property the repository's byte-identical-output
// guarantee rests on:
//
//   - Run maps fn over items with at most jobs workers; results land at the
//     index of their item, so the returned slice has the same stable order
//     at any concurrency. The first failure cancels the remaining work.
//   - RunOrdered additionally DELIVERS results in strict index order
//     through a bounded reorder window (O(jobs) results in flight), so a
//     streaming fold downstream sees sample i before sample i+1 regardless
//     of which worker finished first. Floating-point accumulation order —
//     and therefore the exact bits of folded means — is fixed by the index
//     order, not by scheduling.
//
// With jobs <= 1 both degenerate to a plain serial loop on the calling
// goroutine, which is bit-identical to the parallel path by the invariants
// above.
//
// The repository-wide determinism invariants this package contributes to
// are catalogued in docs/DETERMINISM.md and enforced by `go run
// ./cmd/detlint ./...`.
package pool
