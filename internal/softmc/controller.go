// Package softmc implements the FPGA-based memory-controller abstraction the
// characterization algorithms drive, modeled on the SoftMC infrastructure the
// paper extends for DDR4 (§4.1). The controller owns the command clock,
// schedules commands on the FPGA's 1.5 ns quantum (§4.3 footnote 10), applies
// the standard DDR4 timing parameters with an overridable tRCD (for the
// Alg. 2 latency sweeps), and exposes the bulk row-initialization, hammering,
// readback, and wait primitives the test programs are written in.
//
// Like the real infrastructure, the controller issues no refresh commands
// unless a test explicitly asks for them, which both avoids retention
// interference and starves any in-DRAM TRR defense (§4.1 "Disabling Sources
// of Interference").
package softmc

import (
	"errors"
	"fmt"
	"math"

	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/physics"
)

// ErrTimingOutOfRange is returned for nonsensical timing overrides.
var ErrTimingOutOfRange = errors.New("softmc: timing parameter out of range")

// Timing bundles the DDR4 timing parameters the controller enforces, in
// nanoseconds. Zero values mean "nominal".
type Timing struct {
	TRCD float64 // activate-to-read latency
	TRAS float64 // activate-to-precharge latency
	TRP  float64 // precharge-to-activate latency
	TCCD float64 // read-to-read (column-to-column) latency
}

// Nominal returns the JESD79-4 nominal timing set used by default.
func NominalTiming() Timing {
	return Timing{
		TRCD: physics.TRCDNominalNS,
		TRAS: physics.TRASNominalNS,
		TRP:  physics.TRPNominalNS,
		TCCD: 5.0,
	}
}

// Controller drives one module over the simulated channel.
type Controller struct {
	mod    *dram.Module
	timing Timing
	now    dram.PS
}

// New builds a controller for the module with nominal timing.
func New(mod *dram.Module) *Controller {
	return &Controller{mod: mod, timing: NominalTiming()}
}

// Module returns the attached module.
func (c *Controller) Module() *dram.Module { return c.mod }

// Now returns the controller's current command-clock time.
func (c *Controller) Now() dram.PS { return c.now }

// Timing returns the currently programmed timing parameters.
func (c *Controller) Timing() Timing { return c.timing }

// SetTRCD overrides the activate-to-read latency, quantized to the FPGA's
// 1.5 ns command scheduling granularity (values are rounded up so the
// programmed latency is never optimistically short).
func (c *Controller) SetTRCD(ns float64) error {
	if ns < physics.CommandQuantumNS || ns > 100 {
		return fmt.Errorf("%w: tRCD %.2fns", ErrTimingOutOfRange, ns)
	}
	c.timing.TRCD = c.quantize(ns)
	return nil
}

// ResetTiming restores nominal timing parameters.
func (c *Controller) ResetTiming() { c.timing = NominalTiming() }

// quantize rounds a latency up to the FPGA's command quantum.
func (c *Controller) quantize(ns float64) float64 {
	q := physics.CommandQuantumNS
	return math.Ceil(ns/q-1e-9) * q
}

// advance moves the command clock forward by ns nanoseconds, aligned to the
// command quantum.
func (c *Controller) advance(ns float64) {
	c.now += dram.NSToPS(c.quantize(ns))
}

// Ping verifies the module responds at the current VPP by opening and
// closing row 0 of bank 0.
func (c *Controller) Ping() error {
	if err := c.mod.Activate(c.now, 0, 0); err != nil {
		return err
	}
	c.advance(c.timing.TRAS)
	if err := c.mod.Precharge(c.now, 0); err != nil {
		return err
	}
	c.advance(c.timing.TRP)
	return nil
}

// InitializeRow fills an entire row with the given byte: ACT, a full-row
// write, then PRE. This is the initialize_row step of Algs. 1-3.
func (c *Controller) InitializeRow(bank, row int, fill byte) error {
	if err := c.mod.Activate(c.now, bank, row); err != nil {
		return fmt.Errorf("init row %d: %w", row, err)
	}
	c.advance(c.timing.TRCD)
	image := make([]byte, c.mod.Geometry().RowBytes)
	for i := range image {
		image[i] = fill
	}
	if err := c.mod.WriteRow(c.now, bank, row, image); err != nil {
		return fmt.Errorf("init row %d: %w", row, err)
	}
	// Honor charge restoration before closing the row.
	c.advance(c.timing.TRAS)
	if err := c.mod.Precharge(c.now, bank); err != nil {
		return fmt.Errorf("init row %d: %w", row, err)
	}
	c.advance(c.timing.TRP)
	return nil
}

// ReadRow activates a row using the programmed tRCD, streams out every
// column burst, precharges, and returns the full row image.
func (c *Controller) ReadRow(bank, row int) ([]byte, error) {
	if err := c.mod.Activate(c.now, bank, row); err != nil {
		return nil, fmt.Errorf("read row %d: %w", row, err)
	}
	c.advance(c.timing.TRCD)
	geom := c.mod.Geometry()
	out := make([]byte, 0, geom.RowBytes)
	for col := 0; col < geom.Columns(); col++ {
		d, err := c.mod.Read(c.now, bank, col)
		if err != nil {
			return nil, fmt.Errorf("read row %d col %d: %w", row, col, err)
		}
		out = append(out, d...)
		c.advance(c.timing.TCCD)
	}
	if err := c.mod.Precharge(c.now, bank); err != nil {
		return nil, fmt.Errorf("read row %d: %w", row, err)
	}
	c.advance(c.timing.TRP)
	return out, nil
}

// safeReadTRCDNS is a conservative activation latency above every tested
// module's requirement at any voltage (the worst failing module needs 24 ns
// at VPPmin). Data-comparison reads during RowHammer and retention tests use
// it so that activation-latency violations cannot masquerade as RowHammer or
// retention bit flips — the §4.1 "disabling sources of interference"
// discipline applied to timing.
const safeReadTRCDNS = 30

// ReadRowSafe reads a full row at the conservative safe activation latency,
// regardless of the currently programmed tRCD override, restoring the
// override afterwards.
func (c *Controller) ReadRowSafe(bank, row int) ([]byte, error) {
	saved := c.timing.TRCD
	c.timing.TRCD = safeReadTRCDNS
	defer func() { c.timing.TRCD = saved }()
	return c.ReadRow(bank, row)
}

// ReadColumn activates a row with the programmed tRCD, reads a single column
// burst, and closes the row — the per-column access of Alg. 2.
func (c *Controller) ReadColumn(bank, row, col int) ([]byte, error) {
	if err := c.mod.Activate(c.now, bank, row); err != nil {
		return nil, fmt.Errorf("read col: %w", err)
	}
	c.advance(c.timing.TRCD)
	d, err := c.mod.Read(c.now, bank, col)
	if err != nil {
		return nil, fmt.Errorf("read col: %w", err)
	}
	// Keep the row open long enough for restoration relative to ACT.
	rest := c.timing.TRAS - c.timing.TRCD
	if rest > 0 {
		c.advance(rest)
	}
	if err := c.mod.Precharge(c.now, bank); err != nil {
		return nil, fmt.Errorf("read col: %w", err)
	}
	c.advance(c.timing.TRP)
	return d, nil
}

// Hammer performs count activate/precharge cycles of a single row
// (single-sided hammering).
func (c *Controller) Hammer(bank, row, count int) error {
	if count <= 0 {
		return nil
	}
	if err := c.mod.ActivateMany(c.now, bank, row, count); err != nil {
		return fmt.Errorf("hammer row %d: %w", row, err)
	}
	c.now = c.mod.Now()
	return nil
}

// HammerDoubleSided performs the paper's double-sided attack: the two
// aggressor rows are each activated count times in an alternating fashion
// (hammer count is defined per aggressor row, §4.2).
func (c *Controller) HammerDoubleSided(bank, aggLo, aggHi, count int) error {
	if count <= 0 {
		return nil
	}
	// The device folds exposure additively, so issuing the two aggressors'
	// activations as two bulk bursts is observably identical to strict
	// alternation while keeping the simulation O(1) in count.
	if err := c.Hammer(bank, aggLo, count); err != nil {
		return err
	}
	return c.Hammer(bank, aggHi, count)
}

// WaitMS idles the channel for the given simulated milliseconds (retention
// testing). No refresh commands are issued while waiting.
func (c *Controller) WaitMS(ms float64) error {
	if ms < 0 {
		return fmt.Errorf("%w: wait %.1fms", ErrTimingOutOfRange, ms)
	}
	c.now += dram.MSToPS(ms)
	return c.mod.Wait(c.now)
}

// Refresh issues one REF command (used only by defense ablations and
// mitigation studies, never by the characterization algorithms).
func (c *Controller) Refresh() error {
	if err := c.mod.Refresh(c.now); err != nil {
		return err
	}
	c.advance(350) // tRFC for 8Gb-class devices, ~350ns
	return nil
}

// RefreshRow refreshes a single row (selective-refresh mitigation).
func (c *Controller) RefreshRow(bank, row int) error {
	if err := c.mod.RefreshRow(c.now, bank, row); err != nil {
		return err
	}
	c.advance(c.timing.TRAS + c.timing.TRP)
	return nil
}

// HammerObserveVictims implements mapping.Prober: it initializes the
// candidate rows with a stripe pattern, single-sidedly hammers the aggressor,
// and reports which candidates flipped. Used by adjacency reverse
// engineering (§4.2 "Finding Physically Adjacent Rows").
func (c *Controller) HammerObserveVictims(aggressor, count int, candidates []int) ([]int, error) {
	const fill = 0xFF
	for _, r := range candidates {
		if r == aggressor {
			continue
		}
		if err := c.InitializeRow(0, r, fill); err != nil {
			return nil, err
		}
	}
	if err := c.InitializeRow(0, aggressor, 0x00); err != nil {
		return nil, err
	}
	if err := c.Hammer(0, aggressor, count); err != nil {
		return nil, err
	}
	var victims []int
	for _, r := range candidates {
		if r == aggressor {
			continue
		}
		data, err := c.ReadRowSafe(0, r)
		if err != nil {
			return nil, err
		}
		for _, b := range data {
			if b != fill {
				victims = append(victims, r)
				break
			}
		}
	}
	return victims, nil
}
