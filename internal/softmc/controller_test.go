package softmc

import (
	"errors"
	"testing"

	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
)

func testGeometry() physics.Geometry {
	return physics.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 1024, SubarrayRows: 512}
}

func newCtrl(t *testing.T, name string) *Controller {
	t.Helper()
	p, ok := physics.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	return New(dram.NewModule(p, testGeometry(), 7, dram.WithScheme(mapping.Direct{})))
}

func TestInitializeAndReadRow(t *testing.T) {
	c := newCtrl(t, "A3")
	if err := c.InitializeRow(0, 10, 0xAA); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadRow(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != c.Module().Geometry().RowBytes {
		t.Fatalf("row length %d", len(data))
	}
	for i, b := range data {
		if b != 0xAA {
			t.Fatalf("byte %d = %#x, want 0xAA", i, b)
		}
	}
}

func TestReadColumn(t *testing.T) {
	c := newCtrl(t, "A3")
	if err := c.InitializeRow(0, 11, 0x55); err != nil {
		t.Fatal(err)
	}
	d, err := c.ReadColumn(0, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != dram.BurstBytes {
		t.Fatalf("burst length %d", len(d))
	}
	for _, b := range d {
		if b != 0x55 {
			t.Fatalf("corrupted burst byte %#x", b)
		}
	}
}

func TestSetTRCDQuantization(t *testing.T) {
	c := newCtrl(t, "A3")
	if err := c.SetTRCD(13.0); err != nil {
		t.Fatal(err)
	}
	// 13.0 rounds UP to the next 1.5ns multiple: 13.5.
	if got := c.Timing().TRCD; got != 13.5 {
		t.Errorf("tRCD = %v, want 13.5", got)
	}
	if err := c.SetTRCD(12.0); err != nil {
		t.Fatal(err)
	}
	if got := c.Timing().TRCD; got != 12.0 {
		t.Errorf("tRCD = %v, want 12.0 (already on grid)", got)
	}
	if err := c.SetTRCD(0.5); !errors.Is(err, ErrTimingOutOfRange) {
		t.Errorf("tiny tRCD err = %v", err)
	}
	if err := c.SetTRCD(500); !errors.Is(err, ErrTimingOutOfRange) {
		t.Errorf("huge tRCD err = %v", err)
	}
}

func TestResetTiming(t *testing.T) {
	c := newCtrl(t, "A3")
	if err := c.SetTRCD(6.0); err != nil {
		t.Fatal(err)
	}
	c.ResetTiming()
	if c.Timing() != NominalTiming() {
		t.Errorf("timing after reset = %+v", c.Timing())
	}
}

func TestClockAdvances(t *testing.T) {
	c := newCtrl(t, "A3")
	t0 := c.Now()
	if err := c.InitializeRow(0, 1, 0xFF); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= t0 {
		t.Error("clock did not advance over InitializeRow")
	}
	t1 := c.Now()
	if err := c.WaitMS(5); err != nil {
		t.Fatal(err)
	}
	if got := c.Now() - t1; got != dram.MSToPS(5) {
		t.Errorf("WaitMS advanced %d ps, want %d", got, dram.MSToPS(5))
	}
	if err := c.WaitMS(-1); !errors.Is(err, ErrTimingOutOfRange) {
		t.Errorf("negative wait err = %v", err)
	}
}

func TestHammerDoubleSidedFlipsVictim(t *testing.T) {
	c := newCtrl(t, "B0")
	victim, aggLo, aggHi := 100, 99, 101
	for _, r := range []int{victim, aggLo, aggHi} {
		fill := byte(0x00)
		if r == victim {
			fill = 0xFF
		}
		if err := c.InitializeRow(0, r, fill); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.HammerDoubleSided(0, aggLo, aggHi, 150000); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadRow(0, victim)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, b := range data {
		x := b ^ 0xFF
		for x != 0 {
			x &= x - 1
			flips++
		}
	}
	if flips == 0 {
		t.Error("no flips after 150K double-sided hammers")
	}
}

func TestShortTRCDReadCorrupts(t *testing.T) {
	c := newCtrl(t, "A0")
	c.Module().SetVPP(c.Module().Profile().VPPMin)
	if err := c.InitializeRow(0, 30, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTRCD(3.0); err != nil {
		t.Fatal(err)
	}
	corrupt := false
	for col := 0; col < c.Module().Geometry().Columns() && !corrupt; col++ {
		d, err := c.ReadColumn(0, 30, col)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range d {
			if b != 0xAA {
				corrupt = true
				break
			}
		}
		if err := c.InitializeRow(0, 30, 0xAA); err != nil {
			t.Fatal(err)
		}
	}
	if !corrupt {
		t.Error("no corruption at tRCD=3ns on a failing module at VPPmin")
	}
}

func TestPingFailsBelowVPPMin(t *testing.T) {
	c := newCtrl(t, "A3")
	c.Module().SetVPP(1.0)
	if err := c.Ping(); !errors.Is(err, dram.ErrNoComm) {
		t.Errorf("ping below VPPmin err = %v, want ErrNoComm", err)
	}
}

func TestHammerObserveVictimsFindsNeighbors(t *testing.T) {
	c := newCtrl(t, "B0")
	window := make([]int, 16)
	for i := range window {
		window[i] = 200 + i
	}
	victims, err := c.HammerObserveVictims(208, 600000, window)
	if err != nil {
		t.Fatal(err)
	}
	// At a high single-count probe, victims may include distance-two rows
	// (disambiguation is ReverseEngineer's job); everything must be within
	// physical distance two, and at least one immediate neighbor must flip.
	foundAdjacent := false
	for _, v := range victims {
		if v < 206 || v > 210 || v == 208 {
			t.Errorf("victim %d outside the blast radius of row 208", v)
		}
		if v == 207 || v == 209 {
			foundAdjacent = true
		}
	}
	if !foundAdjacent {
		t.Errorf("victims = %v: no immediate neighbor flipped", victims)
	}
}

func TestReverseEngineerThroughController(t *testing.T) {
	c := newCtrl(t, "B3")
	window := make([]int, 20)
	for i := range window {
		window[i] = 300 + i
	}
	adj, err := mapping.ReverseEngineer(c, window, 1_500_000)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, v := range window[2 : len(window)-2] {
		ns, err := adj.Neighbors(v)
		if err != nil {
			continue
		}
		resolved++
		for _, n := range ns {
			if n != v-1 && n != v+1 {
				t.Errorf("victim %d: non-adjacent aggressor %d survived onset filtering", v, n)
			}
		}
	}
	if resolved < len(window)/2 {
		t.Errorf("only %d/%d interior victims resolved", resolved, len(window)-4)
	}
}

func TestRefreshAdvancesClock(t *testing.T) {
	c := newCtrl(t, "A3")
	t0 := c.Now()
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= t0 {
		t.Error("refresh did not advance the clock")
	}
}
