// Package infra models the physical testing infrastructure around the DRAM
// module (paper §4.1 and Fig. 2): the Adexelec interposer with its removable
// VPP shunt resistor, the external TTi PL068-P programmable power supply
// (±1 mV setpoint precision), the heater pads with the MaxWell FT200 PID
// temperature controller (±0.1 °C regulation), and the VPPmin discovery
// procedure (lower VPP in 0.1 V steps until the module stops communicating).
package infra

import (
	"errors"
	"fmt"
	"math"

	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
	"github.com/dramstudy/rhvpp/internal/softmc"
)

// Infrastructure errors.
var (
	// ErrShuntInstalled indicates the interposer still routes VPP from the
	// FPGA; the external supply cannot drive the rail until the shunt
	// resistor is removed (§4.1).
	ErrShuntInstalled = errors.New("infra: VPP shunt resistor still installed")
	// ErrVoltageRange is returned for supply setpoints outside the safe
	// operating range.
	ErrVoltageRange = errors.New("infra: voltage setpoint out of range")
	// ErrNoModule is returned when instruments are used before wiring.
	ErrNoModule = errors.New("infra: no module attached")
)

// PowerSupply models the external programmable VPP source. Setpoints are
// quantized to the instrument's 1 mV resolution.
type PowerSupply struct {
	mod      *dram.Module
	setpoint float64
	enabled  bool
}

// Attach wires the supply output to a module's VPP rail.
func (ps *PowerSupply) Attach(mod *dram.Module) {
	ps.mod = mod
	ps.setpoint = physics.VPPNominal
}

// SetVoltage programs the output voltage in volts. The supply refuses
// setpoints outside [0.5 V, 3.0 V] to protect the device under test.
func (ps *PowerSupply) SetVoltage(v float64) error {
	if ps.mod == nil {
		return ErrNoModule
	}
	if !ps.enabled {
		return ErrShuntInstalled
	}
	if v < 0.5 || v > 3.0 {
		return fmt.Errorf("%w: %.3fV", ErrVoltageRange, v)
	}
	ps.setpoint = math.Round(v*1000) / 1000
	ps.mod.SetVPP(ps.setpoint)
	return nil
}

// Voltage returns the programmed setpoint.
func (ps *PowerSupply) Voltage() float64 { return ps.setpoint }

// enable marks the rail as externally driven (shunt removed).
func (ps *PowerSupply) enable() { ps.enabled = true }

// ReadCurrentMA returns a simple VPP-rail current estimate in milliamps
// (wordline pump load grows mildly with voltage). The interposer's shunt
// position is where the paper measures current.
func (ps *PowerSupply) ReadCurrentMA() float64 {
	if ps.mod == nil || !ps.mod.Responds() {
		return 0
	}
	v := ps.mod.VPP()
	return 2.0 + 6.5*(v/physics.VPPNominal)*(v/physics.VPPNominal)
}

// Interposer models the Adexelec DDR4 riser with current-measurement shunt
// on the VPP rail. Removing the shunt disconnects the FPGA's VPP from the
// module so the external supply can drive it (§4.1).
type Interposer struct {
	shuntRemoved bool
}

// RemoveShunt electrically disconnects the FPGA-side VPP rail.
func (ip *Interposer) RemoveShunt() { ip.shuntRemoved = true }

// ShuntRemoved reports whether the rail is ready for external supply.
func (ip *Interposer) ShuntRemoved() bool { return ip.shuntRemoved }

// TempController models the PID-regulated heater-pad loop keeping the DRAM
// chips at a programmed temperature with ±0.1 °C precision.
type TempController struct {
	mod    *dram.Module
	target float64
	temp   float64 // current die temperature
	kp     float64
	ki     float64
	kd     float64
	integ  float64
	prev   float64
}

// NewTempController builds the PID loop with gains tuned for the simulated
// first-order thermal plant.
func NewTempController(mod *dram.Module) *TempController {
	return &TempController{
		mod: mod, temp: 35, target: 35,
		kp: 0.9, ki: 0.25, kd: 0.08,
	}
}

// SetTarget programs the regulation setpoint in Celsius.
func (tc *TempController) SetTarget(c float64) {
	tc.target = c
	tc.integ = 0
}

// Temperature returns the current regulated die temperature.
func (tc *TempController) Temperature() float64 { return tc.temp }

// Step advances the thermal plant by dt seconds: the PID output drives the
// heater power against first-order losses to ambient.
func (tc *TempController) Step(dt float64) {
	const (
		ambient  = 25.0
		lossRate = 0.05 // 1/s toward ambient
		heatGain = 1.2  // degC/s per unit drive
	)
	err := tc.target - tc.temp
	tc.integ += err * dt
	tc.integ = math.Max(-40, math.Min(40, tc.integ))
	deriv := (err - tc.prev) / math.Max(dt, 1e-9)
	tc.prev = err
	drive := tc.kp*err + tc.ki*tc.integ + tc.kd*deriv
	drive = math.Max(0, math.Min(10, drive)) // heater only heats
	tc.temp += (heatGain*drive - lossRate*(tc.temp-ambient)) * dt
	if tc.mod != nil {
		tc.mod.SetTemperature(tc.temp)
	}
}

// Settle runs the loop until the temperature stays within ±0.1 °C of the
// target (the FT200's regulation precision) for one full second, or the
// step budget runs out. It reports whether regulation converged.
func (tc *TempController) Settle(maxSeconds float64) bool {
	const dt = 0.1
	stable := 0.0
	for t := 0.0; t < maxSeconds; t += dt {
		tc.Step(dt)
		if math.Abs(tc.temp-tc.target) <= 0.1 {
			stable += dt
			if stable >= 1.0 {
				return true
			}
		} else {
			stable = 0
		}
	}
	return false
}

// Testbed assembles the full experimental setup of Fig. 2: module on the
// interposer, SoftMC controller, external VPP supply, and thermal loop.
type Testbed struct {
	Module     *dram.Module
	Controller *softmc.Controller
	Supply     *PowerSupply
	Interposer *Interposer
	Thermal    *TempController
}

// NewTestbed wires up a testbed for one module profile. The shunt is removed
// and the supply attached at the nominal 2.5 V, ready for voltage sweeps,
// and the thermal loop is settled at the RowHammer test temperature (50 °C).
func NewTestbed(prof physics.ModuleProfile, geom physics.Geometry, seed uint64, opts ...dram.Option) *Testbed {
	mod := dram.NewModule(prof, geom, seed, opts...)
	tb := &Testbed{
		Module:     mod,
		Controller: softmc.New(mod),
		Supply:     &PowerSupply{},
		Interposer: &Interposer{},
		Thermal:    NewTempController(mod),
	}
	tb.Interposer.RemoveShunt()
	tb.Supply.Attach(mod)
	tb.Supply.enable()
	tb.Thermal.SetTarget(physics.RowHammerTestTempC)
	tb.Thermal.Settle(600)
	return tb
}

// SetVPP programs the supply (and thereby the module's rail).
func (tb *Testbed) SetVPP(v float64) error { return tb.Supply.SetVoltage(v) }

// SetTemperature retargets and settles the thermal loop.
func (tb *Testbed) SetTemperature(c float64) error {
	tb.Thermal.SetTarget(c)
	if !tb.Thermal.Settle(1200) {
		return fmt.Errorf("infra: thermal loop did not settle at %.1fC", c)
	}
	return nil
}

// DiscoverVPPmin lowers VPP from nominal in 0.1 V steps until the module
// stops communicating, then returns the lowest voltage at which it still
// responded (§4.1). The supply is left at that voltage.
func (tb *Testbed) DiscoverVPPmin() (float64, error) {
	lowest := math.NaN()
	for v := physics.VPPNominal; v >= 0.5; v -= physics.VPPSweepStep {
		v = math.Round(v*1000) / 1000
		if err := tb.Supply.SetVoltage(v); err != nil {
			return lowest, err
		}
		if err := tb.Controller.Ping(); err != nil {
			if errors.Is(err, dram.ErrNoComm) {
				break
			}
			return lowest, err
		}
		lowest = v
	}
	if math.IsNaN(lowest) {
		return 0, errors.New("infra: module never responded")
	}
	if err := tb.Supply.SetVoltage(lowest); err != nil {
		return lowest, err
	}
	return lowest, nil
}

// ReverseEngineerAdjacency probes physical adjacency for a window of rows
// using single-sided hammering at the given count (several times the
// module's HCfirst divided by the single-sided weight).
func (tb *Testbed) ReverseEngineerAdjacency(window []int, count int) (mapping.AdjacencyMap, error) {
	return mapping.ReverseEngineer(tb.Controller, window, count)
}
