package infra

import (
	"errors"
	"math"
	"testing"

	"github.com/dramstudy/rhvpp/internal/dram"
	"github.com/dramstudy/rhvpp/internal/mapping"
	"github.com/dramstudy/rhvpp/internal/physics"
)

func testGeometry() physics.Geometry {
	return physics.Geometry{Banks: 2, RowsPerBank: 2048, RowBytes: 512, SubarrayRows: 512}
}

func newBed(t *testing.T, name string) *Testbed {
	t.Helper()
	p, ok := physics.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	return NewTestbed(p, testGeometry(), 3)
}

func TestSupplyRequiresAttachAndShunt(t *testing.T) {
	var ps PowerSupply
	if err := ps.SetVoltage(2.5); !errors.Is(err, ErrNoModule) {
		t.Errorf("unattached supply err = %v", err)
	}
	p, _ := physics.ProfileByName("A3")
	mod := dram.NewModule(p, testGeometry(), 1)
	ps.Attach(mod)
	if err := ps.SetVoltage(2.5); !errors.Is(err, ErrShuntInstalled) {
		t.Errorf("shunted supply err = %v", err)
	}
	ps.enable()
	if err := ps.SetVoltage(2.5); err != nil {
		t.Errorf("enabled supply err = %v", err)
	}
}

func TestSupplyRangeAndQuantization(t *testing.T) {
	tb := newBed(t, "A3")
	if err := tb.Supply.SetVoltage(0.2); !errors.Is(err, ErrVoltageRange) {
		t.Errorf("low setpoint err = %v", err)
	}
	if err := tb.Supply.SetVoltage(3.5); !errors.Is(err, ErrVoltageRange) {
		t.Errorf("high setpoint err = %v", err)
	}
	if err := tb.Supply.SetVoltage(2.1997); err != nil {
		t.Fatal(err)
	}
	if got := tb.Supply.Voltage(); got != 2.2 {
		t.Errorf("setpoint = %v, want 2.2 (1mV resolution)", got)
	}
	if got := tb.Module.VPP(); got != 2.2 {
		t.Errorf("module VPP = %v, want 2.2", got)
	}
}

func TestSupplyCurrentModel(t *testing.T) {
	tb := newBed(t, "A3")
	if err := tb.SetVPP(2.5); err != nil {
		t.Fatal(err)
	}
	hi := tb.Supply.ReadCurrentMA()
	if err := tb.SetVPP(1.8); err != nil {
		t.Fatal(err)
	}
	lo := tb.Supply.ReadCurrentMA()
	if hi <= lo || lo <= 0 {
		t.Errorf("current model: %.2fmA at 2.5V vs %.2fmA at 1.8V", hi, lo)
	}
	if err := tb.SetVPP(1.0); err != nil {
		t.Fatal(err)
	}
	if got := tb.Supply.ReadCurrentMA(); got != 0 {
		t.Errorf("current with dead module = %v, want 0", got)
	}
}

func TestThermalSettlesAtTargets(t *testing.T) {
	tb := newBed(t, "A3")
	// NewTestbed settles at the RowHammer test temperature.
	if got := tb.Thermal.Temperature(); math.Abs(got-physics.RowHammerTestTempC) > 0.1 {
		t.Errorf("initial regulated temperature = %v, want 50±0.1", got)
	}
	if err := tb.SetTemperature(physics.RetentionTestTempC); err != nil {
		t.Fatal(err)
	}
	if got := tb.Thermal.Temperature(); math.Abs(got-80) > 0.1 {
		t.Errorf("temperature after retarget = %v, want 80±0.1", got)
	}
	if got := tb.Module.Temperature(); math.Abs(got-80) > 0.1 {
		t.Errorf("module temperature = %v, want 80±0.1", got)
	}
}

func TestDiscoverVPPmin(t *testing.T) {
	for _, name := range []string{"A3", "B3", "A5"} {
		tb := newBed(t, name)
		got, err := tb.DiscoverVPPmin()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := tb.Module.Profile().VPPMin
		if math.Abs(got-want) > 0.051 {
			t.Errorf("%s: discovered VPPmin %v, want %v", name, got, want)
		}
		if !tb.Module.Responds() {
			t.Errorf("%s: module left unresponsive after discovery", name)
		}
	}
}

func TestInterposer(t *testing.T) {
	var ip Interposer
	if ip.ShuntRemoved() {
		t.Error("new interposer reports shunt removed")
	}
	ip.RemoveShunt()
	if !ip.ShuntRemoved() {
		t.Error("RemoveShunt did not take effect")
	}
}

func TestReverseEngineerAdjacencyEndToEnd(t *testing.T) {
	p, _ := physics.ProfileByName("B0")
	tb := NewTestbed(p, testGeometry(), 3, dram.WithScheme(mapping.PairSwap{}))
	mod := tb.Module

	window := make([]int, 24)
	for i := range window {
		window[i] = 64 + i
	}
	// Single-sided probing needs ~HCfirst/SingleSidedWeight activations;
	// use a strong margin.
	adj, err := tb.ReverseEngineerAdjacency(window, 400000)
	if err != nil {
		t.Fatal(err)
	}
	// Check an interior victim: logical 70 -> physical 71 under PairSwap;
	// physical neighbors 70, 72 -> logical 68? No: PhysicalToLogical(70)=71? Use scheme.
	sch := mod.Scheme()
	victim := window[8]
	ns, err := adj.Neighbors(victim)
	if err != nil {
		t.Fatalf("victim %d: %v", victim, err)
	}
	pv := sch.LogicalToPhysical(victim)
	for _, n := range ns {
		pn := sch.LogicalToPhysical(n)
		if pn != pv-1 && pn != pv+1 {
			t.Errorf("aggressor %d (phys %d) not adjacent to victim %d (phys %d)", n, pn, victim, pv)
		}
	}
}
