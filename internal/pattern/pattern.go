// Package pattern implements the DRAM test data patterns used throughout the
// paper's methodology (§4.1 "Data Patterns"): row stripe (0xFF/0x00),
// checkerboard (0xAA/0x55), and thick checker (0xCC/0x33), each in both
// polarities, plus the bookkeeping for the per-row worst-case data pattern
// (WCDP) the experiments select at nominal VPP and reuse at reduced VPP.
package pattern

import (
	"fmt"
	"sort"
)

// Kind identifies one of the six canonical test data patterns.
type Kind int

// The six data patterns of §4.1. Enum starts at 1 so the zero value is
// recognizably "unset" when a WCDP table has not been populated yet.
const (
	RowStripeFF Kind = iota + 1 // 0xFF in victim row (0x00 in aggressors)
	RowStripe00                 // 0x00 in victim row (0xFF in aggressors)
	CheckerAA                   // 0xAA
	Checker55                   // 0x55
	ThickCC                     // 0xCC
	Thick33                     // 0x33
)

// All lists every canonical pattern in a stable order. Callers must not
// mutate the returned slice; it is freshly allocated on each call.
func All() []Kind {
	return []Kind{RowStripeFF, RowStripe00, CheckerAA, Checker55, ThickCC, Thick33}
}

// String returns the conventional name of the pattern.
func (k Kind) String() string {
	switch k {
	case RowStripeFF:
		return "rowstripe-0xFF"
	case RowStripe00:
		return "rowstripe-0x00"
	case CheckerAA:
		return "checker-0xAA"
	case Checker55:
		return "checker-0x55"
	case ThickCC:
		return "thick-0xCC"
	case Thick33:
		return "thick-0x33"
	default:
		return fmt.Sprintf("pattern.Kind(%d)", int(k))
	}
}

// Valid reports whether k is one of the six canonical patterns.
func (k Kind) Valid() bool {
	return k >= RowStripeFF && k <= Thick33
}

// Byte returns the fill byte this pattern writes into the victim row.
func (k Kind) Byte() byte {
	switch k {
	case RowStripeFF:
		return 0xFF
	case RowStripe00:
		return 0x00
	case CheckerAA:
		return 0xAA
	case Checker55:
		return 0x55
	case ThickCC:
		return 0xCC
	case Thick33:
		return 0x33
	default:
		return 0x00
	}
}

// Inverse returns the bitwise-inverse pattern, which Alg. 1 writes into the
// aggressor rows ("initialize_aggressor_rows(..., bitwise_inverse(WCDP))").
func (k Kind) Inverse() Kind {
	switch k {
	case RowStripeFF:
		return RowStripe00
	case RowStripe00:
		return RowStripeFF
	case CheckerAA:
		return Checker55
	case Checker55:
		return CheckerAA
	case ThickCC:
		return Thick33
	case Thick33:
		return ThickCC
	default:
		return k
	}
}

// Fill writes the victim-row byte of pattern k into every element of buf.
func (k Kind) Fill(buf []byte) {
	b := k.Byte()
	for i := range buf {
		buf[i] = b
	}
}

// Bit returns the data bit this pattern stores at the given bit offset within
// a row (offset counted LSB-first within each byte).
func (k Kind) Bit(bitOffset int) bool {
	return k.Byte()&(1<<(uint(bitOffset)%8)) != 0
}

// CountMismatch returns the number of bits in got that differ from pattern
// k's expected fill. It is the BER numerator of the paper's compare_data
// step.
func (k Kind) CountMismatch(got []byte) int {
	want := k.Byte()
	n := 0
	for _, g := range got {
		n += popcount(g ^ want)
	}
	return n
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// WCDPTable records the worst-case data pattern chosen for each row of a
// DRAM bank during the nominal-VPP profiling pass (§4.2: the pattern causing
// the lowest HCfirst, tie-broken by the largest BER at 300K hammers).
// The zero value is an empty table ready for use.
type WCDPTable struct {
	byRow map[int]Kind
}

// Set records the WCDP for a row, replacing any previous choice.
func (t *WCDPTable) Set(row int, k Kind) {
	if t.byRow == nil {
		t.byRow = make(map[int]Kind)
	}
	t.byRow[row] = k
}

// Get returns the WCDP recorded for a row. If the row was never profiled it
// returns RowStripeFF — the conventionally strongest default — and false.
func (t *WCDPTable) Get(row int) (Kind, bool) {
	if t.byRow == nil {
		return RowStripeFF, false
	}
	k, ok := t.byRow[row]
	if !ok {
		return RowStripeFF, false
	}
	return k, true
}

// Len returns the number of rows with a recorded WCDP.
func (t *WCDPTable) Len() int { return len(t.byRow) }

// Rows returns the profiled row addresses in ascending order, so callers
// iterating the table inherit a deterministic walk.
func (t *WCDPTable) Rows() []int {
	rows := make([]int, 0, len(t.byRow))
	for r := range t.byRow {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return rows
}
