package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAllReturnsSixPatterns(t *testing.T) {
	ps := All()
	if len(ps) != 6 {
		t.Fatalf("All() returned %d patterns, want 6", len(ps))
	}
	seen := map[Kind]bool{}
	for _, p := range ps {
		if !p.Valid() {
			t.Errorf("All() contains invalid pattern %v", p)
		}
		if seen[p] {
			t.Errorf("All() contains duplicate %v", p)
		}
		seen[p] = true
	}
}

func TestAllReturnsFreshSlice(t *testing.T) {
	a := All()
	a[0] = Kind(99)
	if b := All(); b[0] == Kind(99) {
		t.Error("All() shares its backing array with callers")
	}
}

func TestStringNames(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{RowStripeFF, "rowstripe-0xFF"},
		{RowStripe00, "rowstripe-0x00"},
		{CheckerAA, "checker-0xAA"},
		{Checker55, "checker-0x55"},
		{ThickCC, "thick-0xCC"},
		{Thick33, "thick-0x33"},
		{Kind(0), "pattern.Kind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var k Kind
	if k.Valid() {
		t.Error("zero Kind reports Valid()")
	}
	if !strings.Contains(k.String(), "Kind(0)") {
		t.Errorf("zero Kind String() = %q", k.String())
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		k Kind
		b byte
	}{
		{RowStripeFF, 0xFF}, {RowStripe00, 0x00},
		{CheckerAA, 0xAA}, {Checker55, 0x55},
		{ThickCC, 0xCC}, {Thick33, 0x33},
	}
	for _, tt := range tests {
		if got := tt.k.Byte(); got != tt.b {
			t.Errorf("%v.Byte() = %#x, want %#x", tt.k, got, tt.b)
		}
	}
}

func TestInverseIsInvolution(t *testing.T) {
	for _, k := range All() {
		inv := k.Inverse()
		if inv == k {
			t.Errorf("%v is its own inverse", k)
		}
		if inv.Inverse() != k {
			t.Errorf("Inverse(Inverse(%v)) = %v", k, inv.Inverse())
		}
		if k.Byte()^inv.Byte() != 0xFF {
			t.Errorf("%v and inverse are not bitwise complements: %#x %#x",
				k, k.Byte(), inv.Byte())
		}
	}
}

func TestFill(t *testing.T) {
	buf := make([]byte, 64)
	CheckerAA.Fill(buf)
	for i, b := range buf {
		if b != 0xAA {
			t.Fatalf("Fill left byte %d = %#x", i, b)
		}
	}
}

func TestBit(t *testing.T) {
	// 0xAA = 10101010b: odd bit positions set (LSB-first indexing).
	for i := 0; i < 16; i++ {
		want := i%2 == 1
		if got := CheckerAA.Bit(i); got != want {
			t.Errorf("CheckerAA.Bit(%d) = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < 8; i++ {
		if !RowStripeFF.Bit(i) {
			t.Errorf("RowStripeFF.Bit(%d) = false", i)
		}
		if RowStripe00.Bit(i) {
			t.Errorf("RowStripe00.Bit(%d) = true", i)
		}
	}
}

func TestCountMismatch(t *testing.T) {
	buf := make([]byte, 8)
	RowStripeFF.Fill(buf)
	if got := RowStripeFF.CountMismatch(buf); got != 0 {
		t.Errorf("mismatch of clean buffer = %d", got)
	}
	buf[0] = 0xFE // one bit flipped
	if got := RowStripeFF.CountMismatch(buf); got != 1 {
		t.Errorf("mismatch after 1 flip = %d", got)
	}
	buf[7] = 0x0F // four more
	if got := RowStripeFF.CountMismatch(buf); got != 5 {
		t.Errorf("mismatch after 5 flips = %d", got)
	}
}

func TestCountMismatchAgainstInverse(t *testing.T) {
	buf := make([]byte, 4)
	RowStripe00.Fill(buf)
	if got := RowStripeFF.CountMismatch(buf); got != 32 {
		t.Errorf("all-bits mismatch = %d, want 32", got)
	}
}

func TestWCDPTable(t *testing.T) {
	var tab WCDPTable
	if tab.Len() != 0 {
		t.Error("zero table not empty")
	}
	if k, ok := tab.Get(5); ok || k != RowStripeFF {
		t.Errorf("Get on empty table = %v,%v; want RowStripeFF,false", k, ok)
	}
	tab.Set(5, ThickCC)
	tab.Set(9, Checker55)
	tab.Set(5, CheckerAA) // overwrite
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	if k, ok := tab.Get(5); !ok || k != CheckerAA {
		t.Errorf("Get(5) = %v,%v; want CheckerAA,true", k, ok)
	}
	rows := tab.Rows()
	if len(rows) != 2 {
		t.Errorf("Rows() = %v", rows)
	}
	found := map[int]bool{}
	for _, r := range rows {
		found[r] = true
	}
	if !found[5] || !found[9] {
		t.Errorf("Rows() = %v, want {5,9}", rows)
	}
}

func TestQuickFillThenCountMismatchZero(t *testing.T) {
	f := func(n uint8, pick uint8) bool {
		k := All()[int(pick)%6]
		buf := make([]byte, int(n))
		k.Fill(buf)
		return k.CountMismatch(buf) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMismatchSymmetric(t *testing.T) {
	// Mismatch count against k equals flips of buf relative to k's fill.
	f := func(data []byte, pick uint8) bool {
		k := All()[int(pick)%6]
		want := 0
		for _, b := range data {
			x := b ^ k.Byte()
			for x != 0 {
				x &= x - 1
				want++
			}
		}
		return k.CountMismatch(data) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
