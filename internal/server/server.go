// Package server implements the `rhvpp serve` HTTP API: campaign-as-a-service
// over the same Campaign engine the CLI drives. A request names an experiment
// and (optionally) campaign knobs; the server resolves the knobs to canonical
// options, collapses concurrent requests for the same canonical-options
// fingerprint onto one computation (singleflight), persists completed
// campaigns to a content-addressed artifact store so restarts serve from
// disk, and renders responses through the same report encoders as the CLI —
// byte-identical output for the same options, whichever surface asked.
//
// The dataflow for GET /v1/experiments/{id} is:
//
//	query knobs ──optparse──▶ Options ──fingerprint──▶ singleflight ──▶ store / compute
//	                                                        │
//	response ◀──report.Encoder── Campaign (memoized cells) ◀┘
//
// Cancellation follows the campaign's cell semantics: a waiter abandoning a
// flight never poisons it for concurrent waiters; only when the last waiter
// leaves is the computation canceled, and a later request starts fresh.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dramstudy/rhvpp"
	"github.com/dramstudy/rhvpp/internal/optparse"
)

// ErrDraining is the refusal new campaign requests receive (as a 503) while
// the server drains for shutdown.
var ErrDraining = errors.New("rhvpp: server is draining, not accepting new campaigns")

// defaultSessionCap bounds how many completed campaigns stay memoized in
// memory; beyond it the oldest session is dropped (its artifact remains in
// the store, so re-requesting it is a disk hit, not a recompute).
const defaultSessionCap = 8

// ComputeFunc produces a campaign for validated options, reporting per-unit
// completion through onUnit and whether the result came from the store. The
// default is rhvpp.CachedCampaign; tests inject deterministic fakes.
type ComputeFunc func(ctx context.Context, o rhvpp.Options, st *rhvpp.ArtifactStore, onUnit func(rhvpp.WorkUnit)) (c *rhvpp.Campaign, fromStore bool, err error)

// Config assembles a Server.
type Config struct {
	// Base is the campaign options a request starts from before its query
	// knobs apply (the CLI's -preset flag resolves to this).
	Base rhvpp.Options
	// Store persists completed campaigns across restarts; nil disables
	// persistence (every cold request computes).
	Store *rhvpp.ArtifactStore
	// Compute overrides the campaign computation; nil means
	// rhvpp.CachedCampaign.
	Compute ComputeFunc
	// SessionCap bounds the in-memory completed-campaign cache
	// (0 = defaultSessionCap).
	SessionCap int
}

// Server is the serve API's state: the singleflight table of in-flight
// computations and the FIFO cache of completed campaigns.
type Server struct {
	base       rhvpp.Options
	store      *rhvpp.ArtifactStore
	compute    ComputeFunc
	sessionCap int

	mu       sync.Mutex
	flights  map[string]*flight  // fingerprint → in-flight computation
	sessions map[string]*session // fingerprint → completed campaign
	order    []string            // session insertion order, for FIFO eviction
	draining bool

	computations atomic.Int64 // campaigns actually computed
	diskHits     atomic.Int64 // campaigns decoded from the store
	memHits      atomic.Int64 // requests served from a live session
}

// flight is one in-flight campaign computation and its waiters. The result
// fields are written exactly once, before done closes; everything else is
// guarded by Server.mu (waiters) or internally synchronized (log).
type flight struct {
	fp      string
	opts    rhvpp.Options
	ctx     context.Context
	cancel  context.CancelFunc
	log     *progressLog
	waiters int // guarded by Server.mu

	done     chan struct{}
	camp     *rhvpp.Campaign
	fromDisk bool
	err      error
}

// session is a completed campaign retained in memory: the memoized Campaign
// plus its finished progress log (so /progress stays answerable after the
// flight lands).
type session struct {
	camp *rhvpp.Campaign
	log  *progressLog
}

// New assembles a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		base:       cfg.Base,
		store:      cfg.Store,
		compute:    cfg.Compute,
		sessionCap: cfg.SessionCap,
		flights:    make(map[string]*flight),
		sessions:   make(map[string]*session),
	}
	if s.compute == nil {
		s.compute = rhvpp.CachedCampaign
	}
	if s.sessionCap <= 0 {
		s.sessionCap = defaultSessionCap
	}
	return s
}

// Handler returns the API's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statusz", s.handleStatusz)
	mux.HandleFunc("GET /v1/experiments", s.handleCatalog)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /v1/studies/{fp}/progress", s.handleProgress)
	return mux
}

// ---- singleflight -----------------------------------------------------

// campaignFor resolves options to a campaign: a live session is a memory
// hit, an in-flight computation is joined, otherwise a new flight launches.
// cacheState reports which path served the request: "mem", "disk", or
// "compute".
func (s *Server) campaignFor(ctx context.Context, o rhvpp.Options) (c *rhvpp.Campaign, cacheState, fp string, err error) {
	fp, err = rhvpp.OptionsFingerprint(o)
	if err != nil {
		return nil, "", "", err
	}
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, "", fp, ErrDraining
		}
		if sess, ok := s.sessions[fp]; ok {
			s.mu.Unlock()
			s.memHits.Add(1)
			return sess.camp, "mem", fp, nil
		}
		fl, ok := s.flights[fp]
		if !ok {
			fctx, cancel := context.WithCancel(context.Background())
			fl = &flight{
				fp: fp, opts: o, ctx: fctx, cancel: cancel,
				log: newProgressLog(), done: make(chan struct{}),
			}
			s.flights[fp] = fl
			go fl.run(s)
		}
		fl.waiters++
		s.mu.Unlock()

		select {
		case <-fl.done:
			s.leave(fl)
			if fl.err != nil {
				// A flight canceled because its last waiter left reports
				// context.Canceled. If this request is still live, that
				// cancellation was not ours — loop and start (or join) a
				// fresh flight instead of failing on a neighbor's ctrl-C.
				if errors.Is(fl.err, context.Canceled) && ctx.Err() == nil {
					continue
				}
				return nil, "", fp, fl.err
			}
			if fl.fromDisk {
				return fl.camp, "disk", fp, nil
			}
			return fl.camp, "compute", fp, nil
		case <-ctx.Done():
			s.leave(fl)
			return nil, "", fp, ctx.Err()
		}
	}
}

// leave records one waiter's departure. The last waiter to abandon a flight
// that has not completed cancels it and removes it from the table, so a
// later request starts fresh instead of joining a doomed computation.
func (s *Server) leave(fl *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl.waiters--
	if fl.waiters > 0 {
		return
	}
	select {
	case <-fl.done:
		// Completed; finish already retired it.
	default:
		delete(s.flights, fl.fp)
		fl.cancel()
	}
}

// run executes the flight's computation and publishes the result. It runs as
// a method goroutine so all shared mutation happens under the server's lock
// (finish) or through the internally-synchronized progress log.
func (fl *flight) run(s *Server) {
	defer fl.cancel()
	total := 0
	if units, err := rhvpp.PlanUnits(fl.opts); err == nil {
		total = len(units)
	}
	fl.log.append(rhvpp.ProgressEvent{Study: "plan", Total: total})
	var done atomic.Int64
	onUnit := func(u rhvpp.WorkUnit) {
		fl.log.append(rhvpp.ProgressEvent{
			Study: u.Study, Key: u.Key, Done: int(done.Add(1)), Total: total,
		})
	}
	fl.camp, fl.fromDisk, fl.err = s.compute(fl.ctx, fl.opts, s.store, onUnit)
	s.finish(fl)
}

// finish retires a completed flight: it leaves the flight table, a
// successful result joins the session cache (evicting FIFO beyond the cap),
// and the hit counters advance. done closes last, after the result fields
// are set, so waiters woken by it read consistent state.
func (s *Server) finish(fl *flight) {
	fl.log.close()
	s.mu.Lock()
	delete(s.flights, fl.fp)
	if fl.err == nil {
		if fl.fromDisk {
			s.diskHits.Add(1)
		} else {
			s.computations.Add(1)
		}
		s.sessions[fl.fp] = &session{camp: fl.camp, log: fl.log}
		s.order = append(s.order, fl.fp)
		for len(s.order) > s.sessionCap {
			delete(s.sessions, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
	close(fl.done)
}

// ---- shutdown ---------------------------------------------------------

// Shutdown drains the server: new campaign requests are refused with 503
// while every in-flight computation runs to completion (so no accepted
// request's work is thrown away). If ctx expires first the remaining
// flights are canceled and their waiters see the cancellation error. The
// HTTP listener is the caller's to close — drain first, then
// http.Server.Shutdown, otherwise there is no listener left to serve the
// 503s from.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	fps := make([]string, 0, len(s.flights))
	for fp := range s.flights { //detlint:ignore maporder sorted below
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	pending := make([]*flight, 0, len(fps))
	for _, fp := range fps {
		pending = append(pending, s.flights[fp])
	}
	s.mu.Unlock()
	for i, fl := range pending {
		select {
		case <-fl.done:
		case <-ctx.Done():
			for _, rest := range pending[i:] {
				rest.cancel()
			}
			for _, rest := range pending[i:] {
				<-rest.done
			}
			return fmt.Errorf("server: drain deadline exceeded, %d campaign(s) canceled: %w",
				len(pending)-i, ctx.Err())
		}
	}
	return nil
}

// Stats is a statusz snapshot.
type Stats struct {
	// Computations counts campaigns actually computed; DiskHits campaigns
	// decoded from the artifact store; MemHits requests served from a live
	// session. One campaign request lands in exactly one bucket.
	Computations int64 `json:"computations"`
	DiskHits     int64 `json:"disk_hits"`
	MemHits      int64 `json:"mem_hits"`
	// InFlight lists running computations in fingerprint order.
	InFlight []FlightStatus `json:"in_flight"`
	// Sessions lists the memoized completed campaigns, oldest first.
	Sessions []string `json:"sessions"`
	// Draining reports whether shutdown has begun.
	Draining bool `json:"draining"`
}

// FlightStatus describes one in-flight computation.
type FlightStatus struct {
	Fingerprint string `json:"fingerprint"`
	Waiters     int    `json:"waiters"`
}

// Stats snapshots the server's counters and tables.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Computations: s.computations.Load(),
		DiskHits:     s.diskHits.Load(),
		MemHits:      s.memHits.Load(),
		InFlight:     []FlightStatus{},
		Sessions:     append([]string{}, s.order...),
		Draining:     s.draining,
	}
	fps := make([]string, 0, len(s.flights))
	for fp := range s.flights { //detlint:ignore maporder sorted below
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		st.InFlight = append(st.InFlight, FlightStatus{Fingerprint: fp, Waiters: s.flights[fp].waiters})
	}
	return st
}

// ---- request parsing --------------------------------------------------

// requestOptions resolves a request's query parameters to campaign options
// and an output format: `preset` picks the base, the shared optparse knobs
// lay over it, and `format` picks the encoder. Unknown parameters are
// errors — a typoed knob must not silently run the preset campaign.
func (s *Server) requestOptions(q url.Values) (rhvpp.Options, rhvpp.Format, error) {
	o := s.base
	f := rhvpp.FormatText
	if p := q.Get("preset"); p != "" {
		var err error
		if o, err = rhvpp.PresetOptions(p); err != nil {
			return o, f, err
		}
	}
	var ov optparse.Overrides
	keys := make([]string, 0, len(q))
	for k := range q { //detlint:ignore maporder sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "format" || k == "preset" {
			continue
		}
		if err := ov.Set(k, q.Get(k)); err != nil {
			return o, f, err
		}
	}
	ov.Apply(&o)
	if v := q.Get("format"); v != "" {
		f = rhvpp.Format(v)
	}
	return o, f, nil
}

// contentType maps formats to response media types.
var contentType = map[rhvpp.Format]string{
	rhvpp.FormatText: "text/plain; charset=utf-8",
	rhvpp.FormatJSON: "application/json",
	rhvpp.FormatCSV:  "text/csv; charset=utf-8",
}

// ---- handlers ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// catalogEntry is one row of GET /v1/experiments.
type catalogEntry struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Section string   `json:"section"`
	Studies []string `json:"studies"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	exps := rhvpp.Experiments()
	entries := make([]catalogEntry, 0, len(exps))
	for _, e := range exps {
		studies := make([]string, 0, len(e.Studies))
		for _, st := range e.Studies {
			studies = append(studies, string(st))
		}
		entries = append(entries, catalogEntry{ID: e.ID, Title: e.Title, Section: e.Section, Studies: studies})
	}
	writeJSON(w, entries)
}

// handleExperiment renders one experiment (or the full "all" stream) for the
// request's options. The body for the golden preset is byte-identical to the
// CLI's stdout for the same flags — the server and the CLI share every layer
// from options parsing to the report encoders.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id != "all" {
		if _, err := rhvpp.LookupExperiment(id); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	o, f, err := s.requestOptions(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := o.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := rhvpp.NewEncoder(f, io.Discard); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	camp, cacheState, fp, err := s.campaignFor(r.Context(), o)
	switch {
	case err == nil:
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case r.Context().Err() != nil:
		// The client left; there is nobody to answer.
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	// Render into a buffer so a mid-render failure can still produce a clean
	// 500 instead of a truncated 200.
	var buf bytes.Buffer
	ids := []string{id}
	if id == "all" {
		ids = ids[:0]
		for _, e := range rhvpp.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, eid := range ids {
		if id == "all" {
			fmt.Fprintf(&buf, "== %s ==\n", eid)
		}
		enc, err := rhvpp.NewEncoder(f, &buf)
		if err == nil {
			err = camp.Run(r.Context(), eid, enc)
		}
		if err != nil {
			http.Error(w, fmt.Sprintf("experiment %s: %v", eid, err), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", contentType[f])
	w.Header().Set("X-Rhvpp-Fingerprint", fp)
	w.Header().Set("X-Rhvpp-Cache", cacheState)
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // client went away mid-body; nothing to clean up
	}
}

// handleProgress streams a computation's progress log as NDJSON: everything
// logged so far immediately, then each new event as it lands, ending when
// the computation completes. Completed sessions replay their full log.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	s.mu.Lock()
	var lg *progressLog
	if fl, ok := s.flights[fp]; ok {
		lg = fl.log
	} else if sess, ok := s.sessions[fp]; ok {
		lg = sess.log
	}
	s.mu.Unlock()
	if lg == nil {
		http.Error(w, fmt.Sprintf("rhvpp: no computation %q in flight or in memory", fp), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		lines, closed, wake := lg.since(next)
		for _, ln := range lines {
			if _, err := w.Write(ln); err != nil {
				return
			}
		}
		next += len(lines)
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// writeJSON writes v as indented JSON (stable, diff-friendly bodies).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return // client went away mid-body
	}
}

// ---- progress log -----------------------------------------------------

// progressLog accumulates a flight's NDJSON progress lines and wakes
// streaming readers as they land. Readers poll since(n) and block on the
// returned wake channel, which closes whenever a line is appended or the
// log closes — a broadcast without per-reader registration.
type progressLog struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{}
}

func newProgressLog() *progressLog {
	return &progressLog{wake: make(chan struct{})}
}

// append encodes one event onto the log. Appends after close are dropped —
// the flight has already published its result, so late events would never
// reach a reader anyway.
func (l *progressLog) append(ev rhvpp.ProgressEvent) {
	raw, err := json.Marshal(ev)
	if err != nil {
		return // unreachable: ProgressEvent has no unmarshalable fields
	}
	raw = append(raw, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.lines = append(l.lines, raw)
	close(l.wake)
	l.wake = make(chan struct{})
}

// close seals the log and wakes all readers one final time.
func (l *progressLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
}

// since returns the lines at index from onward, whether the log is sealed,
// and the channel that will close on the next append or seal.
func (l *progressLog) since(from int) (lines [][]byte, closed bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from > len(l.lines) {
		from = len(l.lines)
	}
	return l.lines[from:], l.closed, l.wake
}
