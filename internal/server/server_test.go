package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dramstudy/rhvpp"
)

// waitFor polls cond until it holds or ~10s elapse. The server's interesting
// states (waiter counts, drain transitions) are reached by goroutines the
// test cannot join directly, so observable-state polling is the sync point.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for range 2000 {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// gatedCompute is an injectable ComputeFunc whose completion the test
// controls: every call reports one fake unit, then blocks until release
// closes (or its flight is canceled). calls counts real invocations — the
// singleflight assertions read it.
type gatedCompute struct {
	release chan struct{}
	calls   atomic.Int64
}

func newGatedCompute() *gatedCompute {
	return &gatedCompute{release: make(chan struct{})}
}

func (g *gatedCompute) fn(ctx context.Context, o rhvpp.Options, st *rhvpp.ArtifactStore, onUnit func(rhvpp.WorkUnit)) (*rhvpp.Campaign, bool, error) {
	g.calls.Add(1)
	if onUnit != nil {
		onUnit(rhvpp.WorkUnit{Study: "fake", Key: "u1"})
	}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	c, err := rhvpp.NewCampaign(o)
	if err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// tinyOptions is the smallest valid campaign: one module, one row, a
// two-run Monte-Carlo at a single retention voltage. Real computations in
// these tests use it so the suite stays fast under -race.
func tinyOptions() rhvpp.Options {
	o := rhvpp.DefaultOptions()
	cfg := rhvpp.QuickConfig()
	cfg.MinHCStep = 4000
	o.Config = cfg
	o.ModuleNames = []string{"B3"}
	o.Chunks = 1
	o.RowsPerChunk = 3
	o.VPPStride = 8
	o.SpiceMCRuns = 2
	o.RetentionVPPLevels = []float64{2.5}
	return o
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServeGoldenAllJSON pins the serving contract to the committed goldens:
// the body of /v1/experiments/all for the golden preset is byte-identical to
// what the CLI prints for `rhvpp -exp all -preset golden`, in every format.
func TestServeGoldenAllJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaign computation in -short mode")
	}
	_, hs := newTestServer(t, Config{Base: rhvpp.GoldenOptions()})
	for _, format := range []string{"json", "text", "csv"} {
		want, err := os.ReadFile("../../testdata/golden/all." + map[string]string{
			"json": "json", "text": "txt", "csv": "csv",
		}[format])
		if err != nil {
			t.Fatal(err)
		}
		code, body, hdr := get(t, hs.URL+"/v1/experiments/all?format="+format)
		if code != http.StatusOK {
			t.Fatalf("format %s: status %d: %s", format, code, body)
		}
		if body != string(want) {
			t.Errorf("format %s: body differs from golden (%d vs %d bytes)", format, len(body), len(want))
		}
		if hdr.Get("X-Rhvpp-Fingerprint") == "" {
			t.Errorf("format %s: no fingerprint header", format)
		}
	}
}

// TestSingleflightCollapsesConcurrentRequests fires N identical requests and
// requires exactly one computation: every request joins the same flight, and
// every waiter gets the same complete answer.
func TestSingleflightCollapsesConcurrentRequests(t *testing.T) {
	g := newGatedCompute()
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})
	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], bodies[i], _ = get(t, hs.URL+"/v1/experiments/table1")
		}()
	}
	waitFor(t, "all waiters to join the flight", func() bool {
		st := srv.Stats()
		return len(st.InFlight) == 1 && st.InFlight[0].Waiters == n
	})
	close(g.release)
	wg.Wait()
	for i := range n {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d got a different body", i)
		}
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d computations, want 1", n, got)
	}
	if st := srv.Stats(); st.Computations != 1 {
		t.Errorf("stats report %d computations, want 1", st.Computations)
	}
	// A later identical request is a memory hit, not a recompute.
	code, _, hdr := get(t, hs.URL+"/v1/experiments/table1")
	if code != http.StatusOK || hdr.Get("X-Rhvpp-Cache") != "mem" {
		t.Errorf("follow-up request: status %d cache %q, want 200 mem", code, hdr.Get("X-Rhvpp-Cache"))
	}
}

// TestCanceledWaiterDoesNotPoisonFlight cancels one of two waiters
// mid-computation: the survivor must still get its answer from the single
// computation. Only when the LAST waiter leaves is the flight canceled, and
// a fresh request then computes anew instead of failing on the stale cancel.
func TestCanceledWaiterDoesNotPoisonFlight(t *testing.T) {
	g := newGatedCompute()
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctxA, "GET", hs.URL+"/v1/experiments/table1", nil)
		if err != nil {
			errA <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("canceled request completed with status %d", resp.StatusCode)
		}
		errA <- err
	}()
	type result struct {
		code int
		body string
	}
	resB := make(chan result, 1)
	go func() {
		code, body, _ := get(t, hs.URL+"/v1/experiments/table1")
		resB <- result{code, body}
	}()
	waitFor(t, "both waiters to join the flight", func() bool {
		st := srv.Stats()
		return len(st.InFlight) == 1 && st.InFlight[0].Waiters == 2
	})

	cancelA()
	if err := <-errA; err == nil {
		t.Fatal("canceled request reported success")
	}
	// The flight survives A's departure: B is still waiting on it.
	waitFor(t, "flight to drop to one waiter", func() bool {
		st := srv.Stats()
		return len(st.InFlight) == 1 && st.InFlight[0].Waiters == 1
	})
	close(g.release)
	b := <-resB
	if b.code != http.StatusOK {
		t.Fatalf("surviving waiter: status %d: %s", b.code, b.body)
	}
	if got := g.calls.Load(); got != 1 {
		t.Errorf("neighbor's cancellation caused %d computations, want 1", got)
	}
}

// TestAllWaitersCancelCausesFreshCompute is the other half of the
// no-poison contract: when the LAST waiter leaves, the flight is canceled,
// and the next identical request starts a fresh computation rather than
// inheriting the corpse.
func TestAllWaitersCancelCausesFreshCompute(t *testing.T) {
	g := newGatedCompute()
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})
	ctxC, cancelC := context.WithCancel(context.Background())
	defer cancelC()
	errC := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctxC, "GET", hs.URL+"/v1/experiments/table1?seed=99", nil)
		if err != nil {
			errC <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("canceled request completed with status %d", resp.StatusCode)
		}
		errC <- err
	}()
	waitFor(t, "lone waiter to join", func() bool {
		return len(srv.Stats().InFlight) == 1
	})
	cancelC()
	if err := <-errC; err == nil {
		t.Fatal("canceled request reported success")
	}
	waitFor(t, "canceled flight to retire", func() bool {
		return len(srv.Stats().InFlight) == 0
	})
	close(g.release) // the fresh computation may complete immediately
	code, body, hdr := get(t, hs.URL+"/v1/experiments/table1?seed=99")
	if code != http.StatusOK {
		t.Fatalf("post-cancel request: status %d: %s", code, body)
	}
	if hdr.Get("X-Rhvpp-Cache") != "compute" {
		t.Errorf("post-cancel request served from %q, want a fresh compute", hdr.Get("X-Rhvpp-Cache"))
	}
	if got := g.calls.Load(); got != 2 {
		t.Errorf("calls = %d, want 2 (one canceled, one fresh)", got)
	}
}

// TestWarmStoreServesAcrossRestart computes a tiny campaign against a store,
// then serves the same request from a brand-new server over the same
// directory: identical bytes, zero computations, one disk hit.
func TestWarmStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := rhvpp.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1, hs1 := newTestServer(t, Config{Base: tinyOptions(), Store: st1})
	code, body1, hdr1 := get(t, hs1.URL+"/v1/experiments/table3")
	if code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", code, body1)
	}
	if hdr1.Get("X-Rhvpp-Cache") != "compute" {
		t.Fatalf("cold request served from %q, want compute", hdr1.Get("X-Rhvpp-Cache"))
	}
	if s := srv1.Stats(); s.Computations != 1 || s.DiskHits != 0 {
		t.Fatalf("first server stats: %+v", s)
	}

	// "Restart": a fresh server and a fresh store handle on the same dir.
	st2, err := rhvpp.OpenArtifactStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, hs2 := newTestServer(t, Config{Base: tinyOptions(), Store: st2})
	code, body2, hdr2 := get(t, hs2.URL+"/v1/experiments/table3")
	if code != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", code, body2)
	}
	if body2 != body1 {
		t.Error("restarted server rendered different bytes from the stored artifact")
	}
	if hdr2.Get("X-Rhvpp-Cache") != "disk" {
		t.Errorf("warm request served from %q, want disk", hdr2.Get("X-Rhvpp-Cache"))
	}
	if s := srv2.Stats(); s.Computations != 0 || s.DiskHits != 1 {
		t.Errorf("restarted server recomputed: %+v", s)
	}
	if hdr2.Get("X-Rhvpp-Fingerprint") != hdr1.Get("X-Rhvpp-Fingerprint") {
		t.Error("fingerprint changed across restart")
	}
}

// TestGracefulShutdownDrains starts a computation, begins shutdown, and
// checks the contract: new requests 503 while the in-flight one completes
// with 200. If the drain deadline expires instead, the remaining flights are
// canceled and their waiters get the draining refusal too.
func TestGracefulShutdownDrains(t *testing.T) {
	g := newGatedCompute()
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})
	type result struct {
		code int
		body string
	}
	inflight := make(chan result, 1)
	go func() {
		code, body, _ := get(t, hs.URL+"/v1/experiments/table1")
		inflight <- result{code, body}
	}()
	waitFor(t, "computation to start", func() bool {
		return len(srv.Stats().InFlight) == 1
	})

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()
	waitFor(t, "drain to begin", func() bool { return srv.Stats().Draining })

	// New work is refused while the listener still answers.
	code, body, _ := get(t, hs.URL+"/v1/experiments/table1?seed=7")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d: %s", code, body)
	}
	if strings.TrimSuffix(body, "\n") != ErrDraining.Error() {
		t.Errorf("drain refusal body %q", body)
	}
	if code, body, _ := get(t, hs.URL+"/v1/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d: %s", code, body)
	}

	// The accepted request still completes.
	close(g.release)
	if r := <-inflight; r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", r.code, r.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownDeadlineCancelsStragglers covers the other drain arm: a
// computation that cannot finish by the deadline is canceled, Shutdown
// reports the overrun, and the waiter ends with the draining refusal
// instead of hanging forever.
func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	g := newGatedCompute() // never released
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})
	type result struct {
		code int
		body string
	}
	inflight := make(chan result, 1)
	go func() {
		code, body, _ := get(t, hs.URL+"/v1/experiments/table1")
		inflight <- result{code, body}
	}()
	waitFor(t, "computation to start", func() bool {
		return len(srv.Stats().InFlight) == 1
	})
	ctx, cancel := context.WithCancel(context.Background())
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	waitFor(t, "drain to begin", func() bool { return srv.Stats().Draining })
	cancel() // deadline expires with the flight still running
	if err := <-shutdownErr; err == nil {
		t.Fatal("Shutdown reported success with a straggler canceled")
	}
	// The waiter's flight died canceled; its retry hits the drain gate.
	if r := <-inflight; r.code != http.StatusServiceUnavailable {
		t.Errorf("straggler's waiter: status %d: %s", r.code, r.body)
	}
}

// TestQueryOptionsErrors pins HTTP 400 bodies to the exact error text the
// CLI prints for the same mistakes — one validation layer, two surfaces.
func TestQueryOptionsErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Base: tinyOptions()})
	badJobs := tinyOptions()
	badJobs.Jobs = -1
	badModules := tinyOptions()
	badModules.ModuleNames = []string{"ZZ"}
	_, unknownExpErr := rhvpp.LookupExperiment("nope")
	_, unknownPresetErr := rhvpp.PresetOptions("bogus")
	_, badFormatErr := rhvpp.NewEncoder(rhvpp.Format("yaml"), io.Discard)
	for _, tc := range []struct {
		name, url, want string
	}{
		{"negative jobs", "/v1/experiments/table3?jobs=-1", badJobs.Validate().Error()},
		{"unknown experiment", "/v1/experiments/nope", unknownExpErr.Error()},
		{"unknown module", "/v1/experiments/table3?modules=ZZ", badModules.Validate().Error()},
		{"unknown format", "/v1/experiments/table3?format=yaml", badFormatErr.Error()},
		{"unknown preset", "/v1/experiments/table3?preset=bogus", unknownPresetErr.Error()},
		{"unknown knob", "/v1/experiments/table3?rowz=5", `unknown option "rowz" (known: modules, rows, chunks, seed, stride, mc, ltetol, batch, fixed-grid, jobs)`},
		{"unparseable knob", "/v1/experiments/table3?rows=eight", ""},
	} {
		code, body, _ := get(t, hs.URL+tc.url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
		if tc.want != "" && strings.TrimSuffix(body, "\n") != tc.want {
			t.Errorf("%s: body %q\n  want %q", tc.name, strings.TrimSuffix(body, "\n"), tc.want)
		}
	}
}

// TestCatalogAndProgress smoke-tests the discovery endpoints: the catalog
// lists every experiment, and a flight's progress endpoint streams NDJSON
// events while the computation runs.
func TestCatalogAndProgress(t *testing.T) {
	g := newGatedCompute()
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})

	code, body, hdr := get(t, hs.URL+"/v1/experiments")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "json") {
		t.Fatalf("catalog: status %d type %s", code, hdr.Get("Content-Type"))
	}
	var entries []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(rhvpp.Experiments()) {
		t.Errorf("catalog lists %d experiments, want %d", len(entries), len(rhvpp.Experiments()))
	}

	if code, body, _ := get(t, hs.URL+"/v1/studies/deadbeef/progress"); code != http.StatusNotFound {
		t.Errorf("unknown study progress: status %d: %s", code, body)
	}

	// Stream a live flight's progress. The fetch blocks on the gated compute,
	// so it runs in a goroutine; any transport error surfaces as the flight
	// never starting (caught by waitFor below), so the result is discarded
	// rather than t.Fatal-ing off the test goroutine.
	go func() {
		resp, err := http.Get(hs.URL + "/v1/experiments/table1")
		if err == nil {
			resp.Body.Close() //detlint:ignore sinkerr test fetch, body already drained by server close
		}
	}()
	waitFor(t, "flight to start", func() bool { return len(srv.Stats().InFlight) == 1 })
	fp := srv.Stats().InFlight[0].Fingerprint
	resp, err := http.Get(hs.URL + "/v1/studies/" + fp + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	readLine := func() rhvpp.ProgressEvent {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("progress stream ended early: %v", sc.Err())
		}
		var ev rhvpp.ProgressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		return ev
	}
	if ev := readLine(); ev.Study != "plan" {
		t.Errorf("first event %+v, want the plan announcement", ev)
	}
	if ev := readLine(); ev.Study != "fake" || ev.Key != "u1" {
		t.Errorf("second event %+v, want the fake unit completion", ev)
	}
	close(g.release)
	// The stream ends when the flight completes.
	waitFor(t, "stream to close", func() bool { return !sc.Scan() })

	// After completion the session replays the full log.
	code, body, _ = get(t, hs.URL+"/v1/studies/"+fp+"/progress")
	if code != http.StatusOK {
		t.Fatalf("completed study progress: status %d", code)
	}
	if lines := strings.Count(body, "\n"); lines != 2 {
		t.Errorf("replayed log has %d lines, want 2:\n%s", lines, body)
	}
}

// TestSessionCacheEvictsFIFO fills the session cache past its cap and
// checks the oldest campaign fell out while the newest survive.
func TestSessionCacheEvictsFIFO(t *testing.T) {
	g := newGatedCompute()
	close(g.release) // no gating; computations complete immediately
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn, SessionCap: 2})
	for seed := 1; seed <= 3; seed++ {
		code, body, _ := get(t, hs.URL+fmt.Sprintf("/v1/experiments/table1?seed=%d", seed))
		if code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, code, body)
		}
	}
	st := srv.Stats()
	if len(st.Sessions) != 2 {
		t.Fatalf("session cache holds %d entries, want 2", len(st.Sessions))
	}
	if st.Computations != 3 {
		t.Errorf("computations = %d, want 3", st.Computations)
	}
	// Re-requesting the evicted campaign recomputes; the cached ones don't.
	if _, _, hdr := get(t, hs.URL+"/v1/experiments/table1?seed=3"); hdr.Get("X-Rhvpp-Cache") != "mem" {
		t.Errorf("newest session evicted: cache %q", hdr.Get("X-Rhvpp-Cache"))
	}
	if _, _, hdr := get(t, hs.URL+"/v1/experiments/table1?seed=1"); hdr.Get("X-Rhvpp-Cache") != "compute" {
		t.Errorf("oldest session survived a full cache: cache %q", hdr.Get("X-Rhvpp-Cache"))
	}
}

// TestExecutionShapeKnobsShareOneFlight pins the fingerprint contract at the
// serving layer: jobs= and batch= shape execution, not results, so requests
// differing only in those knobs collapse onto one computation.
func TestExecutionShapeKnobsShareOneFlight(t *testing.T) {
	g := newGatedCompute()
	close(g.release)
	srv, hs := newTestServer(t, Config{Base: tinyOptions(), Compute: g.fn})
	var fps [3]string
	for i, q := range []string{"", "?jobs=2", "?batch=4"} {
		code, body, hdr := get(t, hs.URL+"/v1/experiments/table1"+q)
		if code != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", q, code, body)
		}
		fps[i] = hdr.Get("X-Rhvpp-Fingerprint")
	}
	if fps[1] != fps[0] || fps[2] != fps[0] {
		t.Errorf("execution-shape knobs changed the fingerprint: %v", fps)
	}
	if st := srv.Stats(); st.Computations != 1 || st.MemHits != 2 {
		t.Errorf("stats %+v, want 1 computation and 2 memory hits", st)
	}
}
