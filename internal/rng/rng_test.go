package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds produced %d identical draws", same)
	}
}

func TestDeriveStable(t *testing.T) {
	a := New(7).Derive("module", "B3").Derive("row", 4711)
	b := New(7).Derive("module", "B3").Derive("row", 4711)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("derived streams with identical labels diverged at draw %d", i)
		}
	}
}

func TestDeriveLabelSeparation(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	a := New(7).Derive("ab", "c")
	b := New(7).Derive("a", "bc")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("label concatenation collision: Derive(ab,c) == Derive(a,bc)")
	}
}

func TestDeriveIndependentOfDrawOrder(t *testing.T) {
	// Deriving a child must not be affected by how many draws the parent made.
	p1 := New(9)
	c1 := p1.Derive("x")
	p2 := New(9)
	p2.Uint64() // consume one draw
	c2 := p2.Derive("x")
	if c1.Uint64() != c2.Uint64() {
		// Derivation hashes the parent's *state*, so consuming draws changes
		// children. That is intentional: document the contract here.
		t.Skip("derivation depends on parent state by design; children must be derived before parent draws")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	for i, c := range counts {
		expect := float64(draws) / n
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d: count %d deviates >5 sigma from %v", i, c, expect)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	s := New(19)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal(10,2) mean = %v, want ~10", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(29)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %v out of range", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(37)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(43)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestQuickDeriveDeterminism(t *testing.T) {
	f := func(seed uint64, label string, n uint8) bool {
		a := New(seed).Derive(label, int(n))
		b := New(seed).Derive(label, int(n))
		return a.Uint64() == b.Uint64() && a.Float64() == b.Float64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := New(seed).Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkDerive(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Derive("row", i)
	}
}
