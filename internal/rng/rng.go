// Package rng provides deterministic, hierarchically derivable pseudo-random
// number streams for the simulation stack.
//
// Every stochastic quantity in the repository (per-cell RowHammer thresholds,
// retention times, Monte-Carlo circuit parameters, measurement noise) is drawn
// from a Stream derived from a stable chain of labels, e.g.
//
//	rng.New(seed).Derive("module", "B3").Derive("bank", 0).Derive("row", 4711)
//
// so that re-running any experiment reproduces identical numbers regardless of
// execution order or concurrency. The generator is xoshiro256++ seeded through
// splitmix64, both public-domain algorithms with well-studied statistical
// quality; no math/rand global state is ever used.
package rng

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random number generator. The zero value is
// not useful; construct streams with New or Derive. A Stream is NOT safe for
// concurrent use; derive one stream per goroutine instead.
type Stream struct {
	s [4]uint64
}

// New returns a Stream seeded from the given 64-bit seed using splitmix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		st.s[i] = z ^ (z >> 31)
	}
	return &st
}

// Derive returns a new independent Stream identified by the given label parts.
// Derivation is stable: the same parent seed and labels always produce the
// same child stream. Labels may be strings, integers, or floats.
func (s *Stream) Derive(labels ...any) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	for _, st := range s.s {
		binary.LittleEndian.PutUint64(buf[:], st)
		h.Write(buf[:])
	}
	for _, l := range labels {
		switch v := l.(type) {
		case string:
			h.Write([]byte(v))
		case int:
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
			h.Write(buf[:])
		case int64:
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		case uint64:
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		case float64:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		default:
			h.Write([]byte(fmt.Sprint(v)))
		}
		h.Write([]byte{0x1f}) // separator so ("ab","c") != ("a","bc")
	}
	return New(h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256++).
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[0]+s.s[3], 23) + s.s[0]
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers control n so this indicates a programmer error.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1, w2 := t&mask32, t>>32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (s *Stream) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)), i.e. a log-normally distributed
// variate parameterized by the underlying normal's mu and sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate).
func (s *Stream) Exp(rate float64) float64 {
	return -math.Log(1-s.Float64()) / rate
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of the first n elements using the
// provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
