package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the document type.
const Schema = "rhvpp/shard-artifact"

// Version is the current format revision. Bump it when a unit payload or
// envelope field changes incompatibly.
const Version = 1

// Unit is one work unit's serialized partial result.
type Unit struct {
	// Study names the study the unit belongs to ("rowhammer", "spice-mc", ...).
	Study string `json:"study"`
	// Key identifies the unit within the study: the module name for the
	// per-module testbed studies, the formatted VPP level for the SPICE
	// Monte-Carlo run ranges.
	Key string `json:"key"`
	// Index is the unit's position in the study's catalog/level order; the
	// merge step folds units back in ascending Index per study.
	Index int `json:"index"`
	// Data is the study-defined partial result payload.
	Data json.RawMessage `json:"data"`
}

// Artifact is one shard's complete output.
type Artifact struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Shard and Of locate this artifact in its shard set: shard Shard of Of.
	// A merged (complete) artifact is canonically shard 0 of 1.
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Options is the canonical encoding of the campaign options the shard
	// ran under. Merge requires byte equality across the shard set.
	Options json.RawMessage `json:"options"`
	// Units are the shard's partial results, sorted by (study, index).
	Units []Unit `json:"units"`
}

// New returns an empty artifact for shard `shard` of `of` under the given
// canonical options encoding.
func New(shard, of int, options json.RawMessage) (*Artifact, error) {
	if of < 1 {
		return nil, fmt.Errorf("artifact: shard set size %d < 1", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("artifact: shard index %d outside [0,%d)", shard, of)
	}
	opts, err := compactOptions(options)
	if err != nil {
		return nil, err
	}
	return &Artifact{Schema: Schema, Version: Version, Shard: shard, Of: of, Options: opts}, nil
}

// compactOptions strips insignificant whitespace so the merge-time byte
// comparison is a real fingerprint check, not a formatting check (the
// indenting encoder reformats nested raw messages).
func compactOptions(options json.RawMessage) (json.RawMessage, error) {
	if len(options) == 0 {
		return options, nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, options); err != nil {
		return nil, fmt.Errorf("artifact: options are not valid JSON: %w", err)
	}
	return json.RawMessage(buf.Bytes()), nil
}

// Add appends one unit's payload, marshaling data.
func (a *Artifact) Add(study, key string, index int, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("artifact: encoding %s unit %q: %w", study, key, err)
	}
	a.Units = append(a.Units, Unit{Study: study, Key: key, Index: index, Data: raw})
	return nil
}

// sortUnits orders units by (study, index, key) so encoded artifacts are
// deterministic regardless of execution order.
func (a *Artifact) sortUnits() {
	sort.SliceStable(a.Units, func(i, j int) bool {
		ui, uj := a.Units[i], a.Units[j]
		if ui.Study != uj.Study {
			return ui.Study < uj.Study
		}
		if ui.Index != uj.Index {
			return ui.Index < uj.Index
		}
		return ui.Key < uj.Key
	})
}

// Encode writes the artifact as indented JSON.
func Encode(w io.Writer, a *Artifact) error {
	a.sortUnits()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// Decode reads one artifact, verifying the schema and version before
// trusting any of the payload.
func Decode(r io.Reader) (*Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("artifact: decoding: %w", err)
	}
	if a.Schema != Schema {
		return nil, fmt.Errorf("artifact: schema %q is not %q", a.Schema, Schema)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("artifact: format version %d unsupported (this build reads version %d)",
			a.Version, Version)
	}
	if a.Of < 1 || a.Shard < 0 || a.Shard >= a.Of {
		return nil, fmt.Errorf("artifact: shard %d of %d is not a valid shard position", a.Shard, a.Of)
	}
	opts, err := compactOptions(a.Options)
	if err != nil {
		return nil, err
	}
	a.Options = opts
	return &a, nil
}

// Merge validates that arts form exactly one complete shard set measured
// under identical options and combines their units into a single complete
// artifact (shard 0 of 1), sorted by (study, index).
func Merge(arts []*Artifact) (*Artifact, error) {
	if len(arts) == 0 {
		return nil, fmt.Errorf("artifact: nothing to merge")
	}
	of := arts[0].Of
	if len(arts) != of {
		return nil, fmt.Errorf("artifact: got %d artifact(s) for a %d-way shard set", len(arts), of)
	}
	opts := string(arts[0].Options)
	seenShard := make([]bool, of)
	type unitID struct {
		study, key string
	}
	seenUnit := make(map[unitID]int)
	merged := &Artifact{Schema: Schema, Version: Version, Shard: 0, Of: 1, Options: arts[0].Options}
	for _, a := range arts {
		if a.Of != of {
			return nil, fmt.Errorf("artifact: mixed shard set sizes %d and %d", of, a.Of)
		}
		if string(a.Options) != opts {
			return nil, fmt.Errorf("artifact: shard %d was measured under different campaign options", a.Shard)
		}
		if seenShard[a.Shard] {
			return nil, fmt.Errorf("artifact: shard %d/%d supplied twice", a.Shard, of)
		}
		seenShard[a.Shard] = true
		for _, u := range a.Units {
			id := unitID{u.Study, u.Key}
			if prev, dup := seenUnit[id]; dup {
				return nil, fmt.Errorf("artifact: %s unit %q appears in shards %d and %d",
					u.Study, u.Key, prev, a.Shard)
			}
			seenUnit[id] = a.Shard
			merged.Units = append(merged.Units, u)
		}
	}
	merged.sortUnits()
	return merged, nil
}
