// Package artifact defines the versioned on-disk encoding of a campaign
// shard's study results. A shard artifact is what `rhvpp -shard i/n` emits
// and what `rhvpp merge` consumes: a self-describing JSON document carrying
// the campaign options it was measured under plus one serialized partial
// result per executed work unit (a per-module testbed for the module-sweep
// studies, a per-VPP-level Monte-Carlo range for the SPICE study).
//
// # Versioning and compatibility contract
//
//   - Schema names the document type; Version is the format revision. Both
//     are checked on decode: a reader accepts exactly the versions it knows
//     (currently only Version 1) and rejects anything else with an error
//     that names both versions, so a fleet mixing binaries fails loudly at
//     merge time instead of mis-aggregating. Bump Version on any
//     incompatible payload or envelope change.
//   - Artifacts merge only with artifacts from the SAME campaign: the
//     canonical options encoding (execution-irrelevant knobs like worker
//     counts excluded by the producer; default-valued additive knobs
//     omitted via omitempty, so older artifacts stay mergeable) must match
//     byte-for-byte, the shard set must be exactly {0..of-1} with no
//     duplicates, and no two shards may carry the same (study, unit) twice.
//   - Unit payloads are opaque json.RawMessage here; their schema belongs to
//     the study that produced them (internal/experiments), which validates
//     completeness against its own plan when assembling. Payload statistics
//     are internal/stats accumulators with lossless JSON round-trips, so a
//     merged campaign renders byte-identically to a single-process run.
//
// # Determinism
//
// Encoded artifacts are deterministic: units are sorted by (study, index,
// key) before encoding regardless of execution order, and Encode writes
// stable indented JSON. Two shards that executed the same units under the
// same options produce identical bytes.
//
// The full catalog of determinism and shard-safety invariants — including
// why partial structs must carry only serializable accumulators — lives in
// docs/DETERMINISM.md; the internal/analysis suite (`go run ./cmd/detlint
// ./...`) enforces them at compile time. The merge-protocol and
// error-handling contracts on this package — Merge methods covering all
// serialized state, no silently discarded encode/write/close errors on
// the artifact path — are enforced by the gen-2 mergecontract and sinkerr
// analyzers (docs/CONTRACTS.md).
package artifact
