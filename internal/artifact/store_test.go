package artifact

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeKey returns a syntactically valid fingerprint whose first byte is c.
func storeKey(c byte) string {
	return string(c) + strings.Repeat("0", 63)
}

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStorePutGetRoundTrip(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	a := mkArtifact(t, 0, 1, `{"seed":7}`,
		Unit{Study: "rowhammer", Key: "B3", Index: 1, Data: json.RawMessage(`{"x":1}`)})
	key := storeKey('a')
	if err := st.Put(key, a); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Options) != `{"seed":7}` || len(got.Units) != 1 || got.Units[0].Key != "B3" {
		t.Errorf("round trip mangled the artifact: %+v", got)
	}

	// The committed entry's bytes are exactly the Encode bytes — the store
	// adds no envelope of its own, so entries stay diffable against shard
	// files written by the CLI.
	var want bytes.Buffer
	if err := Encode(&want, a); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(st.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, want.Bytes()) {
		t.Error("stored bytes differ from Encode output")
	}

	// Overwriting a key is a clean replace.
	b := mkArtifact(t, 0, 1, `{"seed":8}`)
	if err := st.Put(key, b); err != nil {
		t.Fatal(err)
	}
	got, err = st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Options) != `{"seed":8}` {
		t.Errorf("overwrite not visible: options %s", got.Options)
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	for _, key := range []string{
		"",
		"abc",
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
		strings.Repeat("A", 64),          // upper-case hex is not canonical
		strings.Repeat("a", 60) + "zzzz", // non-hex
		"../" + strings.Repeat("a", 61),  // traversal attempt
		strings.Repeat("a", 32) + "/" + strings.Repeat("a", 31), // embedded separator
	} {
		if err := st.Put(key, mkArtifact(t, 0, 1, `{}`)); err == nil {
			t.Errorf("Put accepted malformed key %q", key)
		}
		if _, err := st.Get(key); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get of malformed key %q should fail loudly, got %v", key, err)
		}
	}
}

func TestStoreGetMissingIsNotFound(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	_, err := st.Get(storeKey('b'))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing entry: got %v, want ErrNotFound", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("a miss must not also read as corruption")
	}
}

func TestStoreGetDamagedEntriesAreCorrupt(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	var valid bytes.Buffer
	if err := Encode(&valid, mkArtifact(t, 0, 1, `{"seed":1}`)); err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string][]byte{
		"garbage":       []byte("not json at all"),
		"empty":         {},
		"truncated":     valid.Bytes()[:valid.Len()/2],
		"version-skew":  []byte(`{"schema":"` + Schema + `","version":99,"shard":0,"of":1}`),
		"wrong-schema":  []byte(`{"schema":"other","version":1,"shard":0,"of":1}`),
		"partial-shard": []byte(`{"schema":"` + Schema + `","version":1,"shard":0,"of":2}`),
	} {
		key := storeKey('c')
		if err := os.WriteFile(st.Path(key), body, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := st.Get(key)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s entry: got %v, want ErrCorrupt", name, err)
		}
		if errors.Is(err, ErrNotFound) {
			t.Errorf("%s entry: corruption must not read as a plain miss", name)
		}
	}
}

func TestTwoStoresShareOneDirectory(t *testing.T) {
	dir := t.TempDir()
	a := openTestStore(t, dir)
	b := openTestStore(t, dir)
	key := storeKey('d')
	if err := a.Put(key, mkArtifact(t, 0, 1, `{"seed":1}`)); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(key)
	if err != nil {
		t.Fatalf("second store handle cannot read first handle's entry: %v", err)
	}
	if string(got.Options) != `{"seed":1}` {
		t.Errorf("options = %s", got.Options)
	}
	// Writes race benignly: last committed rename wins, and both handles see it.
	if err := b.Put(key, mkArtifact(t, 0, 1, `{"seed":2}`)); err != nil {
		t.Fatal(err)
	}
	got, err = a.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Options) != `{"seed":2}` {
		t.Errorf("first handle reads stale entry: %s", got.Options)
	}
	keys, err := a.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("Keys = %v, want [%s]", keys, key)
	}
}

func TestOpenStoreSweepsCrashLeftoverTempFiles(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	committed := storeKey('e')
	if err := st.Put(committed, mkArtifact(t, 0, 1, `{}`)); err != nil {
		t.Fatal(err)
	}
	// A writer that died mid-Put leaves an unrenamed temp file and nothing
	// else — the committed entry must survive a sweep, the leftovers must not.
	for _, leftover := range []string{
		storeKey('f') + ".tmp-12345",
		committed + ".tmp-999",
	} {
		if err := os.WriteFile(filepath.Join(dir, leftover), []byte(`{"half":`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2 := openTestStore(t, dir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s survived OpenStore", e.Name())
		}
	}
	if _, err := st2.Get(committed); err != nil {
		t.Errorf("committed entry lost to sweep: %v", err)
	}
	// The abandoned write never became visible as an entry.
	if _, err := st2.Get(storeKey('f')); !errors.Is(err, ErrNotFound) {
		t.Errorf("abandoned write visible: %v", err)
	}
}

func TestStoreKeysIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	key := storeKey('1')
	if err := st.Put(key, mkArtifact(t, 0, 1, `{}`)); err != nil {
		t.Fatal(err)
	}
	for _, foreign := range []string{"README.md", "notes.json", "short.json"} {
		if err := os.WriteFile(filepath.Join(dir, foreign), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("Keys = %v, want just [%s]", keys, key)
	}
}
