package artifact

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store errors. Callers branch on these with errors.Is: a miss means
// "compute it", a corrupt entry means "this file exists but cannot be
// trusted" (a self-healing cache recomputes and overwrites it), anything
// else is a real I/O failure to surface.
var (
	// ErrNotFound reports that the store has no entry at the key.
	ErrNotFound = errors.New("artifact: not in store")
	// ErrCorrupt reports an entry whose bytes do not decode as a valid
	// artifact: truncated by a crash, damaged on disk, or written by an
	// incompatible format version.
	ErrCorrupt = errors.New("artifact: corrupt store entry")
)

// storeExt is the on-disk entry suffix; tmpMark tags in-flight temp files so
// Sweep can tell an interrupted write from a committed entry.
const (
	storeExt = ".json"
	tmpMark  = ".tmp-"
)

// Store is a content-addressed artifact store: one directory holding one
// complete (shard 0 of 1) artifact per canonical-options fingerprint, named
// <fingerprint>.json. Writes are atomic — the JSON lands in a same-directory
// temp file and is renamed into place only when complete — so readers never
// observe a partial entry and a crash leaves only a *.tmp-* file, which the
// next OpenStore sweeps away. Everything read back is treated as untrusted
// input: Get re-validates the envelope and reports damage as ErrCorrupt
// rather than trusting (or crashing on) whatever is on disk.
//
// Multiple processes may share a directory: concurrent Puts of the same key
// are last-writer-wins at the rename, and a Get concurrent with a Put sees
// either the old complete entry or the new one, never a torn mix. Open
// stores before serving traffic, though — OpenStore's sweep would remove a
// temp file another process is still writing.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir and sweeps any
// temp files left by interrupted writers.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: opening store: %w", err)
	}
	s := &Store{dir: dir}
	if _, err := s.Sweep(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey enforces the fingerprint shape — 64 lowercase hex characters, the
// SHA-256 of the canonical options encoding — so a key can never traverse
// out of the store directory or collide with a temp-file name.
func validKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("artifact: store key %q is not a SHA-256 hex fingerprint", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("artifact: store key %q is not a SHA-256 hex fingerprint", key)
		}
	}
	return nil
}

// Path returns the entry file path for a key (whether or not it exists).
func (s *Store) Path(key string) string { return filepath.Join(s.dir, key+storeExt) }

// Get decodes the entry at key. A missing entry is ErrNotFound; an entry
// that exists but does not decode as a complete single-shard artifact is
// ErrCorrupt (with the underlying reason attached).
func (s *Store) Get(key string) (*Artifact, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	fh, err := os.Open(s.Path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("artifact: reading store entry %s: %w", key, err)
	}
	defer fh.Close() //detlint:ignore sinkerr read-only descriptor, close cannot lose written data
	a, err := Decode(fh)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, key, err)
	}
	if a.Of != 1 {
		return nil, fmt.Errorf("%w: %s: entry is shard %d of %d, not a complete campaign",
			ErrCorrupt, key, a.Shard, a.Of)
	}
	return a, nil
}

// Put writes the artifact at key atomically: encode into a same-directory
// temp file, then rename over any existing entry.
func (s *Store) Put(key string, a *Artifact) error {
	if err := validKey(key); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, key+tmpMark+"*")
	if err != nil {
		return fmt.Errorf("artifact: writing store entry %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) //detlint:ignore sinkerr best-effort temp cleanup, a no-op after a successful rename
	if err := Encode(tmp, a); err != nil {
		tmp.Close() //detlint:ignore sinkerr already failing, the encode error is the one to surface
		return fmt.Errorf("artifact: writing store entry %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("artifact: writing store entry %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		return fmt.Errorf("artifact: committing store entry %s: %w", key, err)
	}
	return nil
}

// Keys lists the committed entry fingerprints in sorted order. Temp files
// and foreign files in the directory are ignored.
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: listing store: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, storeExt) {
			continue
		}
		key := strings.TrimSuffix(name, storeExt)
		if validKey(key) != nil {
			continue // temp files (key.tmp-XXX) and foreign files
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// Sweep removes temp files left by writers that died before their rename —
// the only garbage an atomic-rename store can accumulate — and reports how
// many it collected. Committed entries are never touched.
func (s *Store) Sweep() (removed int, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("artifact: sweeping store: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.Contains(e.Name(), tmpMark) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
			return removed, fmt.Errorf("artifact: sweeping store: %w", err)
		}
		removed++
	}
	return removed, nil
}
