package artifact

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeArtifact hammers the store's trust boundary: Decode reads bytes
// from disk (or a peer's shard file) and must reject anything malformed with
// an error — never a panic — and anything it does accept must re-encode and
// re-decode cleanly (otherwise a store entry could be readable once and
// corrupt after the next rewrite). Seeds cover the interesting rejection
// classes: a valid envelope, truncation, version skew, a foreign schema, and
// an impossible shard position; committed corpus files under testdata/fuzz
// keep past crashers in regression.
func FuzzDecodeArtifact(f *testing.F) {
	valid := mkFuzzSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                     // truncated mid-document
	f.Add(bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 99`), 1)) // version skew
	f.Add([]byte(`{"schema":"other","version":1,"shard":0,"of":1}`))
	f.Add([]byte(`{"schema":"` + Schema + `","version":1,"shard":5,"of":2}`))
	f.Add([]byte(`{"schema":"` + Schema + `","version":1,"shard":0,"of":1,"options":{"a":}}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(bytes.NewReader(data))
		if err != nil {
			if a != nil {
				t.Fatal("Decode returned both an artifact and an error")
			}
			return
		}
		// Accepted input: the envelope invariants hold ...
		if a.Schema != Schema || a.Version != Version {
			t.Fatalf("Decode accepted schema %q version %d", a.Schema, a.Version)
		}
		if a.Of < 1 || a.Shard < 0 || a.Shard >= a.Of {
			t.Fatalf("Decode accepted shard position %d/%d", a.Shard, a.Of)
		}
		// ... and the artifact survives a rewrite cycle, as a store overwrite
		// or a merge would perform.
		var buf bytes.Buffer
		if err := Encode(&buf, a); err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
		if _, err := Decode(&buf); err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
	})
}

// mkFuzzSeed encodes a small but fully-populated artifact — the same shape a
// shard run writes — as the fuzzer's starting point.
func mkFuzzSeed(f *testing.F) []byte {
	f.Helper()
	a, err := New(0, 1, json.RawMessage(`{"Seed":42,"ModuleNames":["B3"],"SpiceMCRuns":2}`))
	if err != nil {
		f.Fatal(err)
	}
	if err := a.Add("rowhammer", "B3", 0, map[string]any{"hcfirst": 4000}); err != nil {
		f.Fatal(err)
	}
	if err := a.Add("spice-mc", "2.500", 0, map[string]any{"runs": 2}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		f.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 1`) {
		f.Fatal("seed encoding drifted; update the version-skew mutation")
	}
	return buf.Bytes()
}
