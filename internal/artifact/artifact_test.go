package artifact

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func mkArtifact(t *testing.T, shard, of int, opts string, units ...Unit) *Artifact {
	t.Helper()
	a, err := New(shard, of, json.RawMessage(opts))
	if err != nil {
		t.Fatal(err)
	}
	a.Units = units
	return a
}

func TestNewValidatesShardPosition(t *testing.T) {
	for _, tc := range []struct{ shard, of int }{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		if _, err := New(tc.shard, tc.of, nil); err == nil {
			t.Errorf("New(%d, %d) accepted", tc.shard, tc.of)
		}
	}
	if _, err := New(1, 3, nil); err != nil {
		t.Errorf("valid shard rejected: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a := mkArtifact(t, 1, 2, `{"seed":7}`)
	if err := a.Add("rowhammer", "B3", 3, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("rowhammer", "A0", 0, map[string]int{"x": 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != 1 || got.Of != 2 || len(got.Units) != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	// Units come back sorted by (study, index) for deterministic bytes.
	if got.Units[0].Key != "A0" || got.Units[1].Key != "B3" {
		t.Errorf("units not in catalog order: %v %v", got.Units[0].Key, got.Units[1].Key)
	}
	if string(got.Options) != `{"seed":7}` {
		t.Errorf("options mangled: %s", got.Options)
	}
}

func TestDecodeRejectsWrongSchemaAndFutureVersion(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"other","version":1,"shard":0,"of":1}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	_, err := Decode(strings.NewReader(`{"schema":"` + Schema + `","version":99,"shard":0,"of":1}`))
	if err == nil {
		t.Fatal("future version accepted")
	}
	if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "1") {
		t.Errorf("version error should name both versions: %v", err)
	}
	if _, err := Decode(strings.NewReader(`{"schema":"` + Schema + `","version":1,"shard":3,"of":2}`)); err == nil {
		t.Error("out-of-range shard position accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMergeCombinesACompleteSet(t *testing.T) {
	u := func(study, key string, idx int) Unit {
		return Unit{Study: study, Key: key, Index: idx, Data: json.RawMessage(`{}`)}
	}
	a0 := mkArtifact(t, 0, 2, `{"o":1}`, u("rowhammer", "A0", 0), u("spice-mc", "2.5", 0))
	a1 := mkArtifact(t, 1, 2, `{"o":1}`, u("rowhammer", "B3", 1))
	m, err := Merge([]*Artifact{a1, a0}) // order of files must not matter
	if err != nil {
		t.Fatal(err)
	}
	if m.Shard != 0 || m.Of != 1 {
		t.Errorf("merged artifact should be canonical 0/1, got %d/%d", m.Shard, m.Of)
	}
	if len(m.Units) != 3 {
		t.Fatalf("merged %d units, want 3", len(m.Units))
	}
	// Sorted by (study, index).
	order := []string{"A0", "B3", "2.5"}
	for i, want := range order {
		if m.Units[i].Key != want {
			t.Errorf("unit %d = %q, want %q", i, m.Units[i].Key, want)
		}
	}
}

func TestMergeRejectsBrokenShardSets(t *testing.T) {
	u := func(key string) Unit { return Unit{Study: "s", Key: key, Data: json.RawMessage(`{}`)} }
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
	// Incomplete: 1 of 2 shards.
	if _, err := Merge([]*Artifact{mkArtifact(t, 0, 2, `{}`)}); err == nil {
		t.Error("incomplete shard set accepted")
	}
	// Duplicate shard index.
	if _, err := Merge([]*Artifact{mkArtifact(t, 0, 2, `{}`), mkArtifact(t, 0, 2, `{}`)}); err == nil {
		t.Error("duplicate shard accepted")
	}
	// Mixed set sizes.
	if _, err := Merge([]*Artifact{mkArtifact(t, 0, 2, `{}`), mkArtifact(t, 0, 1, `{}`)}); err == nil {
		t.Error("mixed shard set sizes accepted")
	}
	// Mismatched options.
	if _, err := Merge([]*Artifact{mkArtifact(t, 0, 2, `{"seed":1}`), mkArtifact(t, 1, 2, `{"seed":2}`)}); err == nil {
		t.Error("mismatched options accepted")
	}
	// Same unit in two shards.
	_, err := Merge([]*Artifact{mkArtifact(t, 0, 2, `{}`, u("B3")), mkArtifact(t, 1, 2, `{}`, u("B3"))})
	if err == nil {
		t.Error("duplicate unit accepted")
	} else if !strings.Contains(err.Error(), "B3") {
		t.Errorf("duplicate-unit error should name the unit: %v", err)
	}
}
