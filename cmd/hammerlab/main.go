// Command hammerlab is an interactive playground for one simulated module:
// pick a DIMM from the paper's Table 3, set a wordline voltage, and mount
// RowHammer attacks against it.
//
//	hammerlab -module B3 -victim 100 -hc 50000
//	hammerlab -module B3 -victim 100 -hc 50000 -vpp 1.6
//	hammerlab -module A5 -characterize 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dramstudy/rhvpp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hammerlab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		module       = flag.String("module", "B3", "module name from Table 3 (A0..C9)")
		vpp          = flag.Float64("vpp", rhvpp.VPPNominal, "wordline voltage (V)")
		victim       = flag.Int("victim", 100, "victim row address")
		hc           = flag.Int("hc", 0, "double-sided hammer count per aggressor (0 = skip attack)")
		characterize = flag.Int("characterize", -1, "run full Alg. 1 characterization of this row")
		discover     = flag.Bool("discover-vppmin", false, "lower VPP until the module stops responding")
		seed         = flag.Uint64("seed", 2022, "device instance seed")
	)
	flag.Parse()

	prof, ok := rhvpp.ModuleByName(*module)
	if !ok {
		var known []string
		for _, p := range rhvpp.Modules() {
			known = append(known, p.Name)
		}
		return fmt.Errorf("unknown module %q (known: %s)", *module, strings.Join(known, " "))
	}
	lab := rhvpp.NewLab(prof, rhvpp.WithSeed(*seed))
	fmt.Printf("module %s (%s, %dGb %s, die %s): HCfirst %.0f, BER %.2e at 2.5V; VPPmin %.1fV\n",
		prof.Name, prof.Mfr.FullName(), prof.DensityGb, prof.Org, prof.DieRev,
		prof.Nominal.HCFirst, prof.Nominal.BER, prof.VPPMin)

	if *discover {
		min, err := lab.DiscoverVPPmin()
		if err != nil {
			return err
		}
		fmt.Printf("discovered VPPmin: %.1fV\n", min)
		return nil
	}

	if err := lab.SetVPP(*vpp); err != nil {
		return err
	}
	fmt.Printf("operating at VPP = %.2fV\n", lab.VPP())

	if *characterize >= 0 {
		res, err := lab.CharacterizeRow(*characterize)
		if err != nil {
			return err
		}
		fmt.Printf("row %d: WCDP %v, HCfirst %d, BER %.3e at %d hammers\n",
			res.Row, res.WCDP, res.HCFirst, res.BER, rhvpp.ReferenceHC)
		return nil
	}

	if *hc > 0 {
		lo, hi, err := lab.Aggressors(*victim)
		if err != nil {
			return err
		}
		fmt.Printf("victim %d: aggressors %d and %d (double-sided)\n", *victim, lo, hi)
		ber, err := lab.MeasureBER(*victim, *hc)
		if err != nil {
			return err
		}
		fmt.Printf("after %d hammers/side: BER %.3e\n", *hc, ber)
	}
	return nil
}
