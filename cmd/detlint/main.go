// Command detlint runs the rhvpp determinism, shard-safety, and
// performance-contract analyzer suite (internal/analysis/...) over Go
// package patterns:
//
//	go run ./cmd/detlint ./...          # human-readable, exit 1 on findings
//	go run ./cmd/detlint -json ./...    # machine-readable diagnostics
//	go run ./cmd/detlint -sarif ./...   # SARIF 2.1.0 log for code-scanning UIs
//
// The driver is self-contained so it works offline: package metadata and
// compiler export data come from `go list -deps -export -json`, source is
// parsed and type-checked in-process, packages are analyzed in dependency
// order so cross-package analyzer facts (hotalloc's allocation summaries)
// are available at every call site, and the analyzers run through the same
// execution core as their analysistest fixtures. Suppressions use
// //detlint:ignore <analyzer> <reason> (see internal/analysis/detlint).
//
// The same binary also speaks the `go vet -vettool` protocol, so editors
// and CI can share one tool:
//
//	go build -o /tmp/detlint ./cmd/detlint
//	go vet -vettool=/tmp/detlint ./...
//
// In vettool mode the standard unitchecker drives the suite (go vet hands
// it one package per invocation plus serialized facts from dependencies);
// the diagnostics and suppression semantics are identical to the
// standalone driver because both run the same analyzers.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
	"github.com/dramstudy/rhvpp/internal/analysis/suite"
)

func main() {
	// go vet -vettool invokes the tool as `detlint -V=full` (version probe),
	// `detlint -flags` (flag discovery), and `detlint <flags> <pkg>.cfg`
	// (one unit of work); hand all three shapes to the standard unitchecker
	// before defining any standalone flags. Main never returns.
	if args := os.Args[1:]; len(args) > 0 &&
		(strings.HasPrefix(args[0], "-V") || args[0] == "-flags" ||
			strings.HasSuffix(args[len(args)-1], ".cfg")) {
		unitchecker.Main(suite.All()...)
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log on stdout")
	benchOut := flag.String("bench", "",
		"after a run, record detlint_ns_per_pkg plus the per-analyzer detlint_analyzer_ns_per_pkg breakdown into this JSON snapshot file (read-modify-write)")
	for _, a := range suite.All() {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "detlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Per-analyzer timing only runs under -bench: the injected clock keeps
	// the wall-clock read here, under one reasoned suppression, instead of
	// inside the analyzer core the detsource contract also covers.
	var analyzerNS map[string]float64
	var clock func() time.Time
	var observe func(string, time.Duration)
	if *benchOut != "" {
		analyzerNS = make(map[string]float64)
		clock = time.Now //detlint:ignore detsource self-timing of the analyzer run for the perf snapshot
		observe = func(name string, elapsed time.Duration) {
			analyzerNS[name] += float64(elapsed.Nanoseconds())
		}
	}
	start := time.Now() //detlint:ignore detsource self-timing of the analyzer run for the perf snapshot
	findings, npkgs, err := lint(".", patterns, clock, observe)
	elapsed := time.Since(start) //detlint:ignore detsource self-timing of the analyzer run for the perf snapshot
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	switch {
	case *jsonOut:
		err = writeJSON(os.Stdout, findings)
	case *sarifOut:
		err = writeSARIF(os.Stdout, findings, suite.All())
	default:
		for _, f := range findings {
			fmt.Printf("%s: [%s] %s\n", relPos(f.Pos), f.Analyzer, f.Message)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if *benchOut != "" && npkgs > 0 {
		perAnalyzer := make(map[string]float64, len(analyzerNS))
		for name, ns := range analyzerNS {
			perAnalyzer[name] = ns / float64(npkgs)
		}
		if err := recordBench(*benchOut, float64(elapsed.Nanoseconds())/float64(npkgs), perAnalyzer); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// recordBench merges detlint_ns_per_pkg and the per-analyzer breakdown
// into the JSON object at path, preserving every other key
// (BENCH_spice.json is owned by cmd/spicebench; these are the
// analyzer-cost lines of the same perf snapshot).
func recordBench(path string, nsPerPkg float64, perAnalyzer map[string]float64) error {
	snapshot := make(map[string]any)
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &snapshot); err != nil {
			return fmt.Errorf("bench snapshot %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	snapshot["detlint_ns_per_pkg"] = nsPerPkg
	if len(perAnalyzer) > 0 {
		snapshot["detlint_analyzer_ns_per_pkg"] = perAnalyzer
	}
	// Map marshaling sorts keys, so repeated -bench runs rewrite the file
	// identically; cmd/spicebench carries the key through its own rewrites.
	b, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// listedPkg is the subset of `go list -json` output the driver consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Deps       []string
}

// lint loads the packages matching patterns (relative to dir) and runs the
// full analyzer suite over every non-dependency, non-test package, in
// dependency order under one shared fact store so facts exported while
// analyzing a package are visible at its importers' call sites. It returns
// the findings plus the number of packages analyzed (for -bench). A
// non-nil clock enables per-analyzer timing, reported through observe.
func lint(dir string, patterns []string, clock func() time.Time, observe func(string, time.Duration)) ([]detlint.Finding, int, error) {
	pkgs, err := load(dir, patterns)
	if err != nil {
		return nil, 0, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []listedPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	// Analysis order is topological: Deps is the TRANSITIVE dependency
	// cone, so "fewer in-target deps first" (ties broken by the unique
	// ImportPath) puts every target after all targets it imports. The
	// report stays in position order because findings are re-sorted
	// globally below.
	inTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		inTarget[t.ImportPath] = true
	}
	depCount := func(p listedPkg) int {
		n := 0
		for _, d := range p.Deps {
			if inTarget[d] {
				n++
			}
		}
		return n
	}
	sort.SliceStable(targets, func(i, j int) bool {
		ni, nj := depCount(targets[i]), depCount(targets[j])
		if ni != nj {
			return ni < nj
		}
		return targets[i].ImportPath < targets[j].ImportPath
	})

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the `go list -deps -export` cone)", path)
		}
		return os.Open(file)
	})

	var findings []detlint.Finding
	analyzers := suite.All()
	store := detlint.NewFactStore()
	for _, target := range targets {
		if len(target.CgoFiles) > 0 {
			return nil, 0, fmt.Errorf("%s uses cgo, which this driver cannot type-check", target.ImportPath)
		}
		pkgFindings, err := lintPackage(fset, imp, target, analyzers, store, clock, observe)
		if err != nil {
			return nil, 0, err
		}
		findings = append(findings, pkgFindings...)
	}
	detlint.SortFindings(findings)
	return findings, len(targets), nil
}

// lintPackage parses, type-checks and analyzes one package.
func lintPackage(fset *token.FileSet, imp types.Importer, target listedPkg, analyzers []*analysis.Analyzer, store *detlint.FactStore, clock func() time.Time, observe func(string, time.Duration)) ([]detlint.Finding, error) {
	files := make([]*ast.File, 0, len(target.GoFiles))
	for _, name := range target.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(target.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := detlint.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(target.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", target.ImportPath, err)
	}
	return detlint.RunAnalyzersObserved(&detlint.Package{Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers, store, clock, observe)
}

// load shells out to `go list` for package metadata plus export data for
// the full dependency cone (stdlib included), so type-checking never
// needs the network.
func load(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// jsonFinding is the machine-readable diagnostic record for -json.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// writeJSON emits findings as an indented JSON array (always an array,
// [] when clean) so downstream tooling can consume diagnostics without
// scraping text.
func writeJSON(w io.Writer, findings []detlint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// SARIF 2.1.0 envelope, the subset code-scanning UIs consume: one run,
// one rule per analyzer, one result per finding. Struct-typed so the
// envelope shape is pinned by the compiler and the hermetic test.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits findings as a SARIF 2.1.0 log. Results is always an
// array ([] when clean), and every analyzer appears as a rule whether or
// not it fired, so consumers see the full suite.
func writeSARIF(w io.Writer, findings []detlint.Finding, analyzers []*analysis.Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(f.Pos.Filename))},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "detlint", InformationURI: "https://github.com/dramstudy/rhvpp", Rules: rules}},
			Results: results,
		}},
	})
}

// relPos renders a position with a cwd-relative file path.
func relPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", relPath(p.Filename), p.Line, p.Column)
}

func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
