// Command detlint runs the rhvpp determinism and shard-safety analyzer
// suite (internal/analysis/...) over Go package patterns:
//
//	go run ./cmd/detlint ./...          # human-readable, exit 1 on findings
//	go run ./cmd/detlint -json ./...    # machine-readable diagnostics
//
// The driver is self-contained so it works offline: package metadata and
// compiler export data come from `go list -deps -export -json`, source is
// parsed and type-checked in-process, and the analyzers run through the
// same execution core as their analysistest fixtures. Suppressions use
// //detlint:ignore <analyzer> <reason> (see internal/analysis/detlint).
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
	"github.com/dramstudy/rhvpp/internal/analysis/suite"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	for _, a := range suite.All() {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: [%s] %s\n", relPos(f.Pos), f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// listedPkg is the subset of `go list -json` output the driver consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// lint loads the packages matching patterns (relative to dir) and runs
// the full analyzer suite over every non-dependency, non-test package.
func lint(dir string, patterns []string) ([]detlint.Finding, error) {
	pkgs, err := load(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var targets []listedPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	// Stable + keyed on the unique ImportPath: deterministic report order.
	sort.SliceStable(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not in the `go list -deps -export` cone)", path)
		}
		return os.Open(file)
	})

	var findings []detlint.Finding
	analyzers := suite.All()
	for _, target := range targets {
		if len(target.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s uses cgo, which this driver cannot type-check", target.ImportPath)
		}
		pkgFindings, err := lintPackage(fset, imp, target, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, pkgFindings...)
	}
	return findings, nil
}

// lintPackage parses, type-checks and analyzes one package.
func lintPackage(fset *token.FileSet, imp types.Importer, target listedPkg, analyzers []*analysis.Analyzer) ([]detlint.Finding, error) {
	files := make([]*ast.File, 0, len(target.GoFiles))
	for _, name := range target.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(target.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := detlint.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(target.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", target.ImportPath, err)
	}
	return detlint.RunAnalyzers(&detlint.Package{Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers)
}

// load shells out to `go list` for package metadata plus export data for
// the full dependency cone (stdlib included), so type-checking never
// needs the network.
func load(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// jsonFinding is the machine-readable diagnostic record for -json.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// writeJSON emits findings as an indented JSON array (always an array,
// [] when clean) so downstream tooling can consume diagnostics without
// scraping text.
func writeJSON(w io.Writer, findings []detlint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// relPos renders a position with a cwd-relative file path.
func relPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", relPath(p.Filename), p.Line, p.Column)
}

func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}
