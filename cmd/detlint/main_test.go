package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dramstudy/rhvpp/internal/analysis/detlint"
	"github.com/dramstudy/rhvpp/internal/analysis/suite"
)

// writeModule materializes a throwaway Go module under a temp dir so the
// driver's go-list/export-data pipeline runs against a hermetic target.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLintSyntheticModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/fixmod\n\ngo 1.24\n",
		// dirty: one detsource hit (wall clock) and one maporder hit
		// (map-order append never sorted).
		"dirty/dirty.go": `package dirty

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
		// clean: same shapes done right.
		"clean/clean.go": `package clean

import "sort"

func Collect(m map[string]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
`,
	})

	// A fake injected clock proves the timing hook fires per analyzer
	// without reading the wall clock in a deterministic test.
	var fake time.Time
	clock := func() time.Time { fake = fake.Add(time.Microsecond); return fake }
	timed := make(map[string]time.Duration)
	findings, npkgs, err := lint(dir, []string{"./..."}, clock, func(name string, elapsed time.Duration) {
		timed[name] += elapsed
	})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, a := range suite.All() {
		if _, ok := timed[a.Name]; !ok {
			t.Errorf("per-analyzer timing missing entry for %s", a.Name)
		}
	}
	if npkgs != 2 {
		t.Errorf("lint analyzed %d packages, want 2", npkgs)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+filepath.Base(f.Pos.Filename))
	}
	want := []string{"detsource:dirty.go", "maporder:dirty.go"}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want analyzers %v", got, want)
	}
	// RunAnalyzers sorts by position then analyzer; both hits are in
	// dirty.go with detsource (line 5) before maporder (line 10).
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, f := range findings {
		if strings.Contains(f.Pos.Filename, "clean") {
			t.Errorf("clean package flagged: %+v", f)
		}
	}
}

func TestLintHonorsSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/supmod\n\ngo 1.24\n",
		"a/a.go": `package a

import "time"

//detlint:ignore detsource this package brokers real timestamps by design
func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	findings, _, err := lint(dir, []string{"./..."}, nil, nil)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("suppressed module still has findings: %+v", findings)
	}
}

// TestVettoolMode drives the built binary through the real `go vet
// -vettool` protocol. The fixture splits a hotalloc finding across two
// packages — an allocating helper and a hot caller — so the test covers
// unitchecker's fact files standing in for the offline driver's FactStore.
func TestVettoolMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module example.com/vetmod\n\ngo 1.24\n",
		"dep/dep.go": `package dep

func Alloc(n int) []int { return make([]int, n) }
`,
		"hot/hot.go": `package hot

import "example.com/vetmod/dep"

//detlint:hotpath witness=BenchmarkHot
func Hot(n int) []int { return dep.Alloc(n) }
`,
	})
	tool := filepath.Join(t.TempDir(), "detlint")
	if out, err := exec.Command("go", "build", "-o", tool, ".").CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool reported no findings; want a cross-package hotalloc diagnostic\n%s", out)
	}
	if !strings.Contains(string(out), "may allocate") || !strings.Contains(string(out), "hotpath function Hot") {
		t.Errorf("go vet output missing the cross-package hotalloc diagnostic:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings encode as %q, want []", got)
	}

	buf.Reset()
	in := []detlint.Finding{{Analyzer: "maporder", Message: "boom"}}
	in[0].Pos.Filename = "x.go"
	in[0].Pos.Line = 3
	in[0].Pos.Column = 7
	if err := writeJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 || out[0].Analyzer != "maporder" || out[0].Line != 3 || out[0].Column != 7 || out[0].Message != "boom" {
		t.Errorf("round-trip mismatch: %+v", out)
	}
}

// TestWriteSARIF pins the envelope: version/$schema, one run, a rule per
// suite analyzer, and results always an array.
func TestWriteSARIF(t *testing.T) {
	analyzers := suite.All()

	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil, analyzers); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("envelope version/$schema = %q/%q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "detlint" {
		t.Errorf("driver name = %q, want detlint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analyzers) {
		t.Errorf("got %d rules, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(analyzers))
	}
	if run.Results == nil || len(run.Results) != 0 {
		t.Errorf("clean run must encode results as an empty array, got %#v", run.Results)
	}
	// The results key must be present even when empty (omitempty would
	// drop it and break strict consumers).
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["runs"].([]any)[0].(map[string]any)["results"]; !ok {
		t.Error("clean SARIF log omits the results array")
	}

	buf.Reset()
	in := []detlint.Finding{{Analyzer: "goshared", Message: "boom"}}
	in[0].Pos.Filename = "runner.go"
	in[0].Pos.Line = 5
	in[0].Pos.Column = 2
	if err := writeSARIF(&buf, in, analyzers); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	res := log.Runs[0].Results
	if len(res) != 1 || res[0].RuleID != "goshared" || res[0].Level != "warning" || res[0].Message.Text != "boom" {
		t.Fatalf("result mismatch: %+v", res)
	}
	loc := res[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "runner.go" || loc.Region.StartLine != 5 || loc.Region.StartColumn != 2 {
		t.Errorf("location mismatch: %+v", loc)
	}
}

// TestRecordBenchPerAnalyzer pins that -bench writes the per-analyzer
// breakdown while preserving unrelated snapshot keys.
func TestRecordBenchPerAnalyzer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"mc_runs_per_sec_jobs1": 2600}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := recordBench(path, 123.5, map[string]float64{"goshared": 10, "optfinger": 20}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		MC       float64            `json:"mc_runs_per_sec_jobs1"`
		NS       float64            `json:"detlint_ns_per_pkg"`
		Analyzer map[string]float64 `json:"detlint_analyzer_ns_per_pkg"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.MC != 2600 {
		t.Errorf("unrelated key clobbered: %v", snap.MC)
	}
	if snap.NS != 123.5 || snap.Analyzer["goshared"] != 10 || snap.Analyzer["optfinger"] != 20 {
		t.Errorf("bench keys mismatch: %+v", snap)
	}
}
