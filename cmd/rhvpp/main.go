// Command rhvpp regenerates the paper's tables and figures from the
// simulated study. Each experiment id corresponds to one table/figure of the
// evaluation (see DESIGN.md for the full index):
//
//	rhvpp -list
//	rhvpp -exp table3
//	rhvpp -exp fig5 -modules B3,C0 -rows 8
//	rhvpp -exp fig8b -mc 1000
//	rhvpp -exp all -out results/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/dramstudy/rhvpp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rhvpp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rhvpp", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id to run (or 'all'); see -list")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		modules = fs.String("modules", "", "comma-separated module subset (e.g. B3,C0); empty = all 30")
		rows    = fs.Int("rows", 0, "rows per chunk (0 = default)")
		chunks  = fs.Int("chunks", 0, "row chunks per module (0 = default)")
		seed    = fs.Uint64("seed", 0, "simulation seed (0 = default)")
		stride  = fs.Int("stride", 0, "VPP sweep stride (1 = every 0.1V level)")
		mcRuns  = fs.Int("mc", 0, "SPICE Monte-Carlo runs per voltage (0 = default)")
		full    = fs.Bool("full", false, "use the paper's full-scale parameters (very slow)")
		outDir  = fs.String("out", "", "write each experiment's output to <out>/<id>.txt instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range rhvpp.ExperimentNames() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (use -list to see experiment ids)")
	}

	o := rhvpp.DefaultOptions()
	if *full {
		o = rhvpp.PaperOptions()
	}
	if *modules != "" {
		o.ModuleNames = strings.Split(*modules, ",")
	}
	if *rows > 0 {
		o.RowsPerChunk = *rows
	}
	if *chunks > 0 {
		o.Chunks = *chunks
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	if *stride > 0 {
		o.VPPStride = *stride
	}
	if *mcRuns > 0 {
		o.SpiceMCRuns = *mcRuns
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = rhvpp.ExperimentNames()
	}
	for _, id := range ids {
		w := stdout
		var f *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			var err error
			f, err = os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				return err
			}
			w = f
		}
		fmt.Fprintf(stdout, "== %s ==\n", id)
		err := rhvpp.RunExperiment(id, o, w)
		if f != nil {
			f.Close()
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
