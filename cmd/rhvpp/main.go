// Command rhvpp regenerates the paper's tables and figures from the
// simulated study. Each experiment id corresponds to one table/figure of the
// evaluation (see DESIGN.md for the full index). All ids run within one
// Campaign session, so experiments sharing a study (e.g. table3 and fig3-6)
// measure the hardware once; module sweeps run -jobs modules at a time with
// byte-identical output at any worker count, and ctrl-C (or SIGTERM) cancels
// the sweep cleanly — the process exits non-zero and never leaves a
// partially-written artifact behind.
//
//	rhvpp -list
//	rhvpp -exp table3
//	rhvpp -exp fig5 -modules B3,C0 -rows 8
//	rhvpp -exp fig8b -mc 1000 -format json
//	rhvpp -exp all -jobs 8 -out results/ -format csv
//
// Sharded campaigns split the study work units across processes or hosts and
// merge the artifacts back, byte-identical to a single-process run:
//
//	rhvpp -shard 0/2 -artifact s0.json     # on tester A
//	rhvpp -shard 1/2 -artifact s1.json     # on tester B
//	rhvpp merge -exp all s0.json s1.json   # anywhere
//
// `rhvpp -procs N ...` runs the same split on one machine by fanning units
// out to N subprocesses of this binary (the ProcRunner backend).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"

	"github.com/dramstudy/rhvpp"
	"github.com/dramstudy/rhvpp/internal/optparse"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rhvpp:", err)
		os.Exit(1)
	}
}

// outExt maps formats to output-file extensions for -out. Validation is the
// encoder's job (rhvpp.NewEncoder); this map only picks file names, so a
// format it doesn't know falls back to ".out".
var outExt = map[rhvpp.Format]string{
	rhvpp.FormatText: ".txt",
	rhvpp.FormatJSON: ".json",
	rhvpp.FormatCSV:  ".csv",
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(ctx, args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(ctx, args[1:], stdout)
	}

	fs := flag.NewFlagSet("rhvpp", flag.ContinueOnError)
	var ov optparse.Overrides
	ov.Flags(fs) // the campaign knobs shared with `rhvpp serve` query params
	var (
		exp      = fs.String("exp", "", "experiment id to run (or 'all'); see -list")
		list     = fs.Bool("list", false, "list experiment ids with titles and paper sections, then exit")
		format   = fs.String("format", "text", "output format: text, json, or csv")
		full     = fs.Bool("full", false, "use the paper's full-scale parameters (same as -preset paper)")
		preset   = fs.String("preset", "", "campaign preset: default, paper, or golden (the pinned regression scope)")
		outDir   = fs.String("out", "", "write each experiment's output to <out>/<id>.<ext> instead of stdout")
		progress = fs.Bool("progress", false, "print per-unit completion lines to stderr while studies run")
		shard    = fs.String("shard", "", "run shard i/n of the campaign work units and write a shard artifact (e.g. -shard 0/2)")
		artPath  = fs.String("artifact", "", "shard artifact output path (with -shard; default shard-<i>-of-<n>.json)")
		procs    = fs.Int("procs", 0, "fan study units out to N shard subprocesses of this binary")
		shardRun = fs.String("shard-exec", "", "internal: execute the ShardRequest JSON file at this path, write the artifact to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Subprocess protocol mode (spawned by ProcRunner): no banners, the
	// artifact is the only stdout output.
	if *shardRun != "" {
		return runShardExec(ctx, *shardRun, stdout)
	}

	if *list {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		for _, e := range rhvpp.Experiments() {
			studies := make([]string, 0, len(e.Studies))
			for _, s := range e.Studies {
				studies = append(studies, string(s))
			}
			dep := "-"
			if len(studies) > 0 {
				dep = strings.Join(studies, ",")
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", e.ID, e.Title, e.Section, dep)
		}
		return tw.Flush()
	}

	o, err := baseOptions(*preset, *full)
	if err != nil {
		return err
	}
	ov.Apply(&o)

	if *procs < 0 {
		return fmt.Errorf("-procs %d is negative (use a positive subprocess count, or omit for in-process execution)", *procs)
	}
	if *artPath != "" && *shard == "" {
		return fmt.Errorf("-artifact is only written by -shard runs (add -shard i/n, or drop -artifact)")
	}
	if *shard != "" {
		// A shard run emits an artifact, not rendered output, and always
		// executes in-process: flags that only shape rendering or the
		// subprocess backend would be silently dead here, so reject the
		// contradiction instead (the -full/-preset stance).
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "format", "out", "procs":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("-shard contradicts %s (a shard writes an artifact in-process; render via `rhvpp merge`)",
				strings.Join(conflicts, ", "))
		}
		return runShard(ctx, o, *shard, *artPath, *exp, stdout)
	}

	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (use -list to see experiment ids)")
	}
	f := rhvpp.Format(*format)
	if _, err := rhvpp.NewEncoder(f, io.Discard); err != nil {
		return err
	}

	c, err := rhvpp.NewCampaign(o)
	if err != nil {
		return err
	}
	if *progress {
		c.WithProgress(stderrProgress())
	}
	if *procs > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("-procs: resolving own binary: %w", err)
		}
		c.WithRunner(rhvpp.ProcRunner{Command: []string{exe, "-shard-exec"}, Shards: *procs})
	}
	return renderExperiments(ctx, c, expandIDs(*exp), f, *outDir, stdout)
}

// baseOptions resolves the campaign preset through the shared resolver (the
// serve API's `preset` query parameter goes through the same one). -full is
// an alias for -preset paper; combining it with a different preset is
// contradictory and rejected rather than silently resolved.
func baseOptions(preset string, full bool) (rhvpp.Options, error) {
	if full {
		if preset != "" && preset != "paper" {
			return rhvpp.Options{}, fmt.Errorf("-full contradicts -preset %s (drop one)", preset)
		}
		preset = "paper"
	}
	return rhvpp.PresetOptions(preset)
}

// stderrProgress returns a progress hook printing one line per completed
// work unit. Module-sweep events arrive concurrently from the worker pool,
// so the hook serializes writes to keep lines whole.
func stderrProgress() rhvpp.ProgressFunc {
	var mu sync.Mutex
	return func(ev rhvpp.ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Key == "" {
			fmt.Fprintf(os.Stderr, "rhvpp: %s: %d units\n", ev.Study, ev.Total)
			return
		}
		fmt.Fprintf(os.Stderr, "rhvpp: %s %s %d/%d\n", ev.Study, ev.Key, ev.Done, ev.Total)
	}
}

// expandIDs resolves "all" to every experiment id in presentation order.
func expandIDs(exp string) []string {
	if exp != "all" {
		return []string{exp}
	}
	var ids []string
	for _, e := range rhvpp.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// renderExperiments renders each id through the campaign, with the same
// banner/stream layout for the local, subprocess-backed, and merged paths.
func renderExperiments(ctx context.Context, c *rhvpp.Campaign, ids []string,
	f rhvpp.Format, outDir string, stdout io.Writer) error {
	ext, ok := outExt[f]
	if !ok {
		ext = ".out"
	}
	for _, id := range ids {
		w := stdout
		var fh *os.File
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			var err error
			fh, err = os.Create(filepath.Join(outDir, id+ext))
			if err != nil {
				return err
			}
			w = fh
		}
		fmt.Fprintf(stdout, "== %s ==\n", id)
		enc, err := rhvpp.NewEncoder(f, w)
		if err == nil {
			err = c.Run(ctx, id, enc)
		}
		if fh != nil {
			// A close failure on the output file is a lost short write;
			// surface it unless the experiment already failed.
			if cerr := fh.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}

// shardStudies resolves which studies a shard covers: every shardable study
// for "" or "all", otherwise the selected experiment's shardable studies.
func shardStudies(exp string) ([]rhvpp.Study, error) {
	if exp == "" || exp == "all" {
		return nil, nil // PlanUnits default: every shardable study
	}
	e, ok := rhvpp.ExperimentByID(exp)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (known: %v)", exp, rhvpp.ExperimentNames())
	}
	shardable := make(map[rhvpp.Study]bool)
	for _, s := range rhvpp.ShardableStudies() {
		shardable[s] = true
	}
	var studies []rhvpp.Study
	for _, s := range e.Studies {
		if shardable[s] {
			studies = append(studies, s)
		}
	}
	if len(studies) == 0 {
		return nil, fmt.Errorf("experiment %s has no shardable studies; run it directly with -exp", exp)
	}
	return studies, nil
}

// parseShardSpec parses "i/n" strictly: both halves must be whole decimal
// numbers with nothing trailing, so a typo like "1/2/3" is rejected instead
// of silently running as shard 1 of 2.
func parseShardSpec(spec string) (shard, of int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if ok {
		shard, err = strconv.Atoi(i)
		if err == nil {
			of, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/n, e.g. 0/2", spec)
	}
	return shard, of, nil
}

// runShard executes this process's slice of the campaign plan and writes the
// artifact atomically: the JSON lands in a temp file in the target directory
// and is renamed into place only after a complete, successful run, so an
// interrupted or failed shard leaves no partial artifact behind.
func runShard(ctx context.Context, o rhvpp.Options, spec, path, exp string, stdout io.Writer) error {
	shard, of, err := parseShardSpec(spec)
	if err != nil {
		return err
	}
	studies, err := shardStudies(exp)
	if err != nil {
		return err
	}
	units, err := rhvpp.PlanUnits(o, studies...)
	if err != nil {
		return err
	}
	mine, err := rhvpp.ShardUnits(units, shard, of)
	if err != nil {
		return err
	}
	art, err := rhvpp.RunShard(ctx, o, shard, of, mine)
	if err != nil {
		return err
	}
	if path == "" {
		path = fmt.Sprintf("shard-%d-of-%d.json", shard, of)
	}
	if err := writeArtifactAtomic(path, art); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d of %d plan units)\n", path, len(mine), len(units))
	return nil
}

// writeArtifactAtomic encodes into a same-directory temp file and renames.
func writeArtifactAtomic(path string, art *rhvpp.ShardArtifact) error {
	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //detlint:ignore sinkerr best-effort temp cleanup, a no-op after a successful rename
	if err := rhvpp.EncodeArtifact(tmp, art); err != nil {
		tmp.Close() //detlint:ignore sinkerr already failing, the encode error is the one to surface
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// runShardExec is the ProcRunner subprocess protocol: read one ShardRequest,
// execute it, write the artifact JSON to stdout.
func runShardExec(ctx context.Context, reqPath string, stdout io.Writer) error {
	fh, err := os.Open(reqPath)
	if err != nil {
		return err
	}
	defer fh.Close() //detlint:ignore sinkerr read-only descriptor, close cannot lose written data
	req, err := rhvpp.DecodeShardRequest(fh)
	if err != nil {
		return err
	}
	art, err := rhvpp.RunShard(ctx, req.Options, req.Shard, req.Of, req.Units)
	if err != nil {
		return err
	}
	return rhvpp.EncodeArtifact(stdout, art)
}

// runMerge combines shard artifacts and renders experiments from the merged
// campaign. The campaign options come from the artifacts (all shards must
// match); only presentation flags apply here.
func runMerge(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rhvpp merge", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "all", "experiment id to render from the merged campaign (or 'all')")
		format = fs.String("format", "text", "output format: text, json, or csv")
		outDir = fs.String("out", "", "write each experiment's output to <out>/<id>.<ext> instead of stdout")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: rhvpp merge [-exp id] [-format f] [-out dir] shard0.json shard1.json ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("merge: no shard artifacts given")
	}
	f := rhvpp.Format(*format)
	if _, err := rhvpp.NewEncoder(f, io.Discard); err != nil {
		return err
	}
	arts := make([]*rhvpp.ShardArtifact, len(paths))
	for i, path := range paths {
		fh, err := os.Open(path)
		if err != nil {
			return err
		}
		arts[i], err = rhvpp.DecodeArtifact(fh)
		fh.Close() //detlint:ignore sinkerr read-only descriptor, the decode error is the one to surface
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	c, err := rhvpp.MergeArtifacts(arts...)
	if err != nil {
		return err
	}
	return renderExperiments(ctx, c, expandIDs(*exp), f, *outDir, stdout)
}
