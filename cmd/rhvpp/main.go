// Command rhvpp regenerates the paper's tables and figures from the
// simulated study. Each experiment id corresponds to one table/figure of the
// evaluation (see DESIGN.md for the full index). All ids run within one
// Campaign session, so experiments sharing a study (e.g. table3 and fig3-6)
// measure the hardware once; module sweeps run -jobs modules at a time with
// byte-identical output at any worker count, and ctrl-C cancels the sweep.
//
//	rhvpp -list
//	rhvpp -exp table3
//	rhvpp -exp fig5 -modules B3,C0 -rows 8
//	rhvpp -exp fig8b -mc 1000 -format json
//	rhvpp -exp all -jobs 8 -out results/ -format csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"github.com/dramstudy/rhvpp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rhvpp:", err)
		os.Exit(1)
	}
}

// outExt maps formats to output-file extensions for -out. Validation is the
// encoder's job (rhvpp.NewEncoder); this map only picks file names, so a
// format it doesn't know falls back to ".out".
var outExt = map[rhvpp.Format]string{
	rhvpp.FormatText: ".txt",
	rhvpp.FormatJSON: ".json",
	rhvpp.FormatCSV:  ".csv",
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rhvpp", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id to run (or 'all'); see -list")
		list    = fs.Bool("list", false, "list experiment ids with titles and paper sections, then exit")
		format  = fs.String("format", "text", "output format: text, json, or csv")
		jobs    = fs.Int("jobs", 0, "concurrent module sweeps (0 = one per CPU)")
		modules = fs.String("modules", "", "comma-separated module subset (e.g. B3,C0); empty = all 30")
		rows    = fs.Int("rows", 0, "rows per chunk (0 = default)")
		chunks  = fs.Int("chunks", 0, "row chunks per module (0 = default)")
		seed    = fs.Uint64("seed", 0, "simulation seed (0 = default)")
		stride  = fs.Int("stride", 0, "VPP sweep stride (1 = every 0.1V level)")
		mcRuns  = fs.Int("mc", 0, "SPICE Monte-Carlo runs per voltage (0 = default)")
		full    = fs.Bool("full", false, "use the paper's full-scale parameters (very slow)")
		outDir  = fs.String("out", "", "write each experiment's output to <out>/<id>.<ext> instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		for _, e := range rhvpp.Experiments() {
			studies := make([]string, 0, len(e.Studies))
			for _, s := range e.Studies {
				studies = append(studies, string(s))
			}
			dep := "-"
			if len(studies) > 0 {
				dep = strings.Join(studies, ",")
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", e.ID, e.Title, e.Section, dep)
		}
		return tw.Flush()
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (use -list to see experiment ids)")
	}

	f := rhvpp.Format(*format)
	if _, err := rhvpp.NewEncoder(f, io.Discard); err != nil {
		return err
	}
	ext, ok := outExt[f]
	if !ok {
		ext = ".out"
	}

	o := rhvpp.DefaultOptions()
	if *full {
		o = rhvpp.PaperOptions()
	}
	if *modules != "" {
		o.ModuleNames = strings.Split(*modules, ",")
	}
	if *rows > 0 {
		o.RowsPerChunk = *rows
	}
	if *chunks > 0 {
		o.Chunks = *chunks
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	if *stride > 0 {
		o.VPPStride = *stride
	}
	if *mcRuns > 0 {
		o.SpiceMCRuns = *mcRuns
	}
	o.Jobs = *jobs

	c, err := rhvpp.NewCampaign(o)
	if err != nil {
		return err
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range rhvpp.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		w := stdout
		var fh *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			fh, err = os.Create(filepath.Join(*outDir, id+ext))
			if err != nil {
				return err
			}
			w = fh
		}
		fmt.Fprintf(stdout, "== %s ==\n", id)
		enc, err := rhvpp.NewEncoder(f, w)
		if err == nil {
			err = c.Run(ctx, id, enc)
		}
		if fh != nil {
			fh.Close()
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
