package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table3", "fig5", "fig10a", "ext-temp"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
	// The listing carries titles and paper sections from the descriptors.
	for _, want := range []string{"Module RowHammer characteristics", "§5, Table 3", "rowhammer"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing descriptor text %q:\n%s", want, out)
		}
	}
}

func TestMissingExperimentFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), nil, &buf); err == nil {
		t.Error("missing -exp accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table2", "-format", "yaml"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestUnknownModuleRejectedUpFront(t *testing.T) {
	var buf bytes.Buffer
	err := run(t.Context(), []string{"-exp", "table2", "-modules", "B3,QQ"}, &buf)
	if err == nil {
		t.Fatal("unknown module accepted")
	}
	if !strings.Contains(err.Error(), "QQ") {
		t.Errorf("error does not name the unknown module: %v", err)
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "16.8 fF") {
		t.Errorf("table2 output wrong:\n%s", buf.String())
	}
}

func TestRunTable2JSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table2", "-format", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	// Skip the "== table2 ==" banner, then expect one JSON object.
	out := buf.String()
	idx := strings.Index(out, "\n")
	var el struct {
		Kind    string     `json:"kind"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out[idx+1:]), &el); err != nil {
		t.Fatalf("output after banner is not JSON: %v\n%s", err, out)
	}
	if el.Kind != "table" || len(el.Rows) == 0 {
		t.Errorf("unexpected JSON element: %+v", el)
	}
}

func TestRunScopedExperimentWithFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(t.Context(), []string{"-exp", "summary", "-modules", "B3", "-rows", "3",
		"-chunks", "2", "-stride", "4", "-seed", "9", "-jobs", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HCfirst") {
		t.Errorf("summary output wrong:\n%s", buf.String())
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table1", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "272") {
		t.Error("written file missing content")
	}
}

func TestOutDirUsesFormatExtension(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table1", "-out", dir, "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Mfr,#DIMMs") {
		t.Errorf("CSV output missing header:\n%s", data)
	}
}
