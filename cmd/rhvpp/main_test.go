package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table3", "fig5", "fig10a", "ext-temp"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestMissingExperimentFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing -exp accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "16.8 fF") {
		t.Errorf("table2 output wrong:\n%s", buf.String())
	}
}

func TestRunScopedExperimentWithFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "summary", "-modules", "B3", "-rows", "3",
		"-chunks", "2", "-stride", "4", "-seed", "9"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HCfirst") {
		t.Errorf("summary output wrong:\n%s", buf.String())
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "272") {
		t.Error("written file missing content")
	}
}
