package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dramstudy/rhvpp"
)

// TestMain doubles as the shard subprocess for the ProcRunner tests: when
// re-executed with RHVPP_TEST_SHARD_EXEC=1, the test binary behaves like
// `rhvpp <args>` instead of running the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("RHVPP_TEST_SHARD_EXEC") == "1" {
		if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rhvpp:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table3", "fig5", "fig10a", "ext-temp"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
	// The listing carries titles and paper sections from the descriptors.
	for _, want := range []string{"Module RowHammer characteristics", "§5, Table 3", "rowhammer"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing descriptor text %q:\n%s", want, out)
		}
	}
}

func TestMissingExperimentFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), nil, &buf); err == nil {
		t.Error("missing -exp accepted")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table2", "-format", "yaml"}, &buf); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestUnknownModuleRejectedUpFront(t *testing.T) {
	var buf bytes.Buffer
	err := run(t.Context(), []string{"-exp", "table2", "-modules", "B3,QQ"}, &buf)
	if err == nil {
		t.Fatal("unknown module accepted")
	}
	if !strings.Contains(err.Error(), "QQ") {
		t.Errorf("error does not name the unknown module: %v", err)
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "16.8 fF") {
		t.Errorf("table2 output wrong:\n%s", buf.String())
	}
}

func TestRunTable2JSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table2", "-format", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	// Skip the "== table2 ==" banner, then expect one JSON object.
	out := buf.String()
	idx := strings.Index(out, "\n")
	var el struct {
		Kind    string     `json:"kind"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out[idx+1:]), &el); err != nil {
		t.Fatalf("output after banner is not JSON: %v\n%s", err, out)
	}
	if el.Kind != "table" || len(el.Rows) == 0 {
		t.Errorf("unexpected JSON element: %+v", el)
	}
}

func TestRunScopedExperimentWithFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(t.Context(), []string{"-exp", "summary", "-modules", "B3", "-rows", "3",
		"-chunks", "2", "-stride", "4", "-seed", "9", "-jobs", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HCfirst") {
		t.Errorf("summary output wrong:\n%s", buf.String())
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table1", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "272") {
		t.Error("written file missing content")
	}
}

func TestOutDirUsesFormatExtension(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "table1", "-out", dir, "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Mfr,#DIMMs") {
		t.Errorf("CSV output missing header:\n%s", data)
	}
}

// shardFlags is the scoped campaign the CLI shard tests run: one study,
// two small modules.
func shardFlags(extra ...string) []string {
	return append([]string{"-exp", "cv", "-modules", "B3,C0", "-rows", "3",
		"-chunks", "2", "-stride", "4"}, extra...)
}

func TestShardEmitsArtifactAndMergeRenders(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.json")
	s1 := filepath.Join(dir, "s1.json")
	var buf bytes.Buffer
	if err := run(t.Context(), shardFlags("-shard", "0/2", "-artifact", s0), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote "+s0) {
		t.Errorf("shard run should report the artifact path:\n%s", buf.String())
	}
	if err := run(t.Context(), shardFlags("-shard", "1/2", "-artifact", s1), &buf); err != nil {
		t.Fatal(err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("shard dir should hold exactly the two artifacts, got %v", entries)
	}

	// The merged rendering matches a direct single-process run.
	var direct bytes.Buffer
	if err := run(t.Context(), shardFlags(), &direct); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if err := run(t.Context(), []string{"merge", "-exp", "cv", s0, s1}, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.String() != direct.String() {
		t.Errorf("merge output differs from direct run:\n--- merge ---\n%s\n--- direct ---\n%s",
			merged.String(), direct.String())
	}
}

func TestShardValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), shardFlags("-shard", "2/2"), &buf); err == nil {
		t.Error("out-of-range shard accepted")
	}
	for _, spec := range []string{"nope", "1/2/3", "1/2 ", "1/", "/2", "0x1/2"} {
		if err := run(t.Context(), shardFlags("-shard", spec), &buf); err == nil {
			t.Errorf("malformed shard spec %q accepted", spec)
		}
	}
	if err := run(t.Context(), []string{"-exp", "table2", "-full", "-preset", "golden"}, &buf); err == nil {
		t.Error("contradictory -full -preset accepted")
	}
	// Flags that would be silently dead in shard mode are rejected.
	for _, extra := range [][]string{
		{"-format", "json"}, {"-out", "/tmp/x"}, {"-procs", "2"},
	} {
		args := append(shardFlags("-shard", "0/2"), extra...)
		if err := run(t.Context(), args, &buf); err == nil {
			t.Errorf("-shard with %v accepted", extra)
		}
	}
	// ...and so are their render-mode inverses.
	if err := run(t.Context(), shardFlags("-artifact", "/tmp/x.json"), &buf); err == nil {
		t.Error("-artifact without -shard accepted")
	}
	if err := run(t.Context(), shardFlags("-procs", "-4"), &buf); err == nil {
		t.Error("negative -procs accepted")
	}
	// An experiment with no shardable studies cannot be sharded.
	if err := run(t.Context(), []string{"-exp", "table1", "-shard", "0/2"}, &buf); err == nil {
		t.Error("shardless experiment accepted for -shard")
	}
}

// TestShardCanceledLeavesNoArtifact is the clean-interrupt satellite: a
// canceled shard run exits with the context error and writes nothing.
func TestShardCanceledLeavesNoArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var buf bytes.Buffer
	if err := run(ctx, shardFlags("-shard", "0/1", "-artifact", path), &buf); err == nil {
		t.Fatal("canceled shard run reported success")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("canceled shard left files behind: %v", entries)
	}
}

func TestMergeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"merge"}, &buf); err == nil {
		t.Error("merge without artifacts accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"rhvpp/shard-artifact","version":99,"shard":0,"of":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(t.Context(), []string{"merge", bad}, &buf)
	if err == nil {
		t.Fatal("future-version artifact accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("error should explain the version mismatch: %v", err)
	}
	// An incomplete shard set is rejected before any rendering.
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.json")
	if err := run(t.Context(), shardFlags("-shard", "0/2", "-artifact", s0), &buf); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), []string{"merge", s0}, &buf); err == nil {
		t.Error("incomplete shard set accepted")
	}
}

func TestPresetGoldenSelectsPinnedScope(t *testing.T) {
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-exp", "bogus", "-preset", "nope"}, &buf); err == nil {
		t.Error("unknown preset accepted")
	}
	// -preset golden plans the pinned module selection.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	if err := run(t.Context(), []string{"-preset", "golden", "-exp", "cv", "-shard", "0/1", "-artifact", path}, &buf); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close() //detlint:ignore sinkerr read path; DecodeArtifact checks every read error
	art, err := rhvpp.DecodeArtifact(fh)
	if err != nil {
		t.Fatal(err)
	}
	want := len(rhvpp.GoldenOptions().ModuleNames)
	if len(art.Units) != want {
		t.Errorf("golden-preset CV shard has %d units, want %d", len(art.Units), want)
	}
}

// TestProcRunnerEndToEnd drives the subprocess backend against this test
// binary (re-executed via TestMain): output must match the in-process run
// byte for byte.
func TestProcRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fan-out in -short mode")
	}
	t.Setenv("RHVPP_TEST_SHARD_EXEC", "1") // inherited by the children
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	o := rhvpp.DefaultOptions()
	o.ModuleNames = []string{"B3", "C0"}
	o.RowsPerChunk = 3
	o.Chunks = 2
	o.VPPStride = 4

	render := func(c *rhvpp.Campaign) string {
		var buf bytes.Buffer
		enc := rhvpp.NewTextEncoder(&buf)
		for _, id := range []string{"cv", "guardband"} {
			if err := c.Run(t.Context(), id, enc); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
		}
		return buf.String()
	}
	local, err := rhvpp.NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	want := render(local)

	proc, err := rhvpp.NewCampaign(o)
	if err != nil {
		t.Fatal(err)
	}
	proc.WithRunner(rhvpp.ProcRunner{Command: []string{exe, "-shard-exec"}, Shards: 2})
	if got := render(proc); got != want {
		t.Errorf("ProcRunner output differs from LocalRunner:\n--- proc ---\n%s\n--- local ---\n%s", got, want)
	}
	// The studies ran remotely exactly once each, from this session's view.
	for _, s := range []rhvpp.Study{rhvpp.StudyCV, rhvpp.StudyTRCD} {
		if got := proc.StudyRuns()[s]; got != 1 {
			t.Errorf("study %s executed %d times, want 1", s, got)
		}
	}
}

func TestShardExecProtocol(t *testing.T) {
	o := rhvpp.DefaultOptions()
	o.ModuleNames = []string{"B3"}
	o.RowsPerChunk = 3
	o.Chunks = 2
	units, err := rhvpp.PlanUnits(o, rhvpp.StudyCV)
	if err != nil {
		t.Fatal(err)
	}
	req := filepath.Join(t.TempDir(), "req.json")
	raw, err := json.Marshal(rhvpp.ShardRequest{Shard: 0, Of: 1, Options: o, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(req, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(t.Context(), []string{"-shard-exec", req}, &buf); err != nil {
		t.Fatal(err)
	}
	art, err := rhvpp.DecodeArtifact(&buf)
	if err != nil {
		t.Fatalf("shard-exec stdout is not an artifact: %v", err)
	}
	if len(art.Units) != 1 || art.Units[0].Key != "B3" {
		t.Errorf("unexpected artifact units: %+v", art.Units)
	}
}
