package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"github.com/dramstudy/rhvpp"
	"github.com/dramstudy/rhvpp/internal/optparse"
	"github.com/dramstudy/rhvpp/internal/server"
)

// runServe starts the campaign-as-a-service API:
//
//	rhvpp serve -preset golden -store /var/cache/rhvpp
//	curl localhost:8344/v1/experiments/table3?format=json
//
// The campaign knobs (-modules, -mc, ...) set the server's base options;
// each request may override them via identically-named query parameters.
// SIGINT/SIGTERM (via the main ctx) triggers a graceful shutdown: new
// campaign requests get 503 while in-flight computations drain under
// -drain, then the listener closes.
func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rhvpp serve", flag.ContinueOnError)
	var ov optparse.Overrides
	ov.Flags(fs)
	var (
		addr     = fs.String("addr", "localhost:8344", "listen address")
		storeDir = fs.String("store", "", "artifact store directory for completed campaigns (empty = no persistence)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight campaign computations")
		preset   = fs.String("preset", "", "campaign preset the base options come from: default, paper, or golden")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	o, err := rhvpp.PresetOptions(*preset)
	if err != nil {
		return err
	}
	ov.Apply(&o)
	if err := o.Validate(); err != nil {
		return err
	}
	var st *rhvpp.ArtifactStore
	if *storeDir != "" {
		if st, err = rhvpp.OpenArtifactStore(*storeDir); err != nil {
			return err
		}
	}

	srv := server.New(server.Config{Base: o, Store: st})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rhvpp serve: listening on http://%s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}

	// Two-phase shutdown: drain the campaign computations first — the
	// listener stays open so new requests receive their 503s and in-flight
	// waiters their responses — then close the HTTP server itself.
	fmt.Fprintf(stdout, "rhvpp serve: draining (deadline %s)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	httpErr := hs.Shutdown(drainCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if drainErr != nil {
		return drainErr
	}
	if httpErr != nil {
		return fmt.Errorf("serve: closing listener: %w", httpErr)
	}
	fmt.Fprintln(stdout, "rhvpp serve: drained")
	return nil
}
