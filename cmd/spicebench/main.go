// Command spicebench measures the SPICE solver's headline throughput —
// transient steps per second and Monte-Carlo runs per second, incremental
// engine vs the dense finite-difference reference — and writes a JSON
// snapshot. CI runs it on every change so the perf trajectory of the
// hottest path in the repository is recorded next to the code
// (BENCH_spice.json at the repository root holds the latest committed
// snapshot).
//
//	spicebench -out BENCH_spice.json
//	spicebench -runs 64 -jobs 4
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/dramstudy/rhvpp"
	"github.com/dramstudy/rhvpp/internal/spice"
)

// Snapshot is the serialized benchmark result.
type Snapshot struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Transient-step throughput on the Table 2 netlist at nominal VPP.
	StepNSIncremental float64 `json:"transient_step_ns_incremental"`
	StepNSReference   float64 `json:"transient_step_ns_reference"`
	StepSpeedup       float64 `json:"transient_step_speedup"`

	// Monte-Carlo campaign throughput at 2.0 V, ±5% variation.
	MCRunsPerSecReference float64 `json:"mc_runs_per_sec_serial_reference"`
	MCRunsPerSecJobs1     float64 `json:"mc_runs_per_sec_jobs1"`
	MCRunsPerSecJobs      float64 `json:"mc_runs_per_sec_jobs"`
	MCJobs                int     `json:"mc_jobs"`
	MCSpeedupJobs1        float64 `json:"mc_speedup_jobs1_vs_reference"`
	MCSpeedupJobs         float64 `json:"mc_speedup_jobs_vs_reference"`

	// Full Fig. 8b/9b-style aggregate: one global run queue across a VPP
	// sweep, streaming aggregation, per-worker workspace reuse. BytesPerRun
	// is total heap allocation divided by runs — the streaming-statistics
	// memory-bound metric (pre-streaming, aggregation bytes grew with every
	// retained sample; now the bytes are simulation transients only).
	MCAggRunsPerSec  float64 `json:"mc_agg_runs_per_sec"`
	MCAggLevels      int     `json:"mc_agg_levels"`
	MCAggBytesPerRun float64 `json:"mc_agg_bytes_per_run"`

	// Sharded campaign pipeline end to end: the full SPICE Monte-Carlo study
	// split into 2 shard artifacts (plan -> run -> encode), file-decoded and
	// merged back into a rendered-ready campaign. Runs/s over the whole
	// pipeline, so the serialization + merge overhead of sharding is visible
	// next to the raw in-process MC throughput above.
	ShardMergeRunsPerSec float64 `json:"shard_merge_runs_per_sec"`
	ShardMergeShards     int     `json:"shard_merge_shards"`
}

func main() {
	var (
		out  = flag.String("out", "", "write the JSON snapshot to this file (default stdout)")
		runs = flag.Int("runs", 48, "Monte-Carlo runs per measurement")
		jobs = flag.Int("jobs", 4, "worker count for the parallel Monte-Carlo measurement")
	)
	flag.Parse()

	snap, err := measure(*runs, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicebench:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicebench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "spicebench:", err)
		os.Exit(1)
	}
}

func measure(runs, jobs int) (Snapshot, error) {
	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		MCJobs:    jobs,
	}

	// Transient step cost: one full nominal-VPP activation per engine,
	// repeated until the measurement is stable enough to quote.
	var err error
	snap.StepNSIncremental, err = stepCost(spice.SimulateActivation)
	if err != nil {
		return snap, err
	}
	snap.StepNSReference, err = stepCost(spice.SimulateActivationReference)
	if err != nil {
		return snap, err
	}
	snap.StepSpeedup = ratio(snap.StepNSReference, snap.StepNSIncremental)

	ref, err := mcThroughput(spice.MCConfig{Runs: runs, Jobs: 1, Reference: true})
	if err != nil {
		return snap, err
	}
	one, err := mcThroughput(spice.MCConfig{Runs: runs, Jobs: 1})
	if err != nil {
		return snap, err
	}
	many, err := mcThroughput(spice.MCConfig{Runs: runs, Jobs: jobs})
	if err != nil {
		return snap, err
	}
	snap.MCRunsPerSecReference = ref
	snap.MCRunsPerSecJobs1 = one
	snap.MCRunsPerSecJobs = many
	snap.MCSpeedupJobs1 = ratio(one, ref)
	snap.MCSpeedupJobs = ratio(many, ref)

	aggRate, aggBytes, levels, err := mcAggregate(runs, jobs)
	if err != nil {
		return snap, err
	}
	snap.MCAggRunsPerSec = aggRate
	snap.MCAggBytesPerRun = aggBytes
	snap.MCAggLevels = levels

	snap.ShardMergeShards = 2
	snap.ShardMergeRunsPerSec, err = shardMergeThroughput(runs, jobs, snap.ShardMergeShards)
	if err != nil {
		return snap, err
	}
	return snap, nil
}

// shardMergeThroughput times the sharded-campaign pipeline end to end for
// the SPICE Monte-Carlo study: plan units, execute each shard, encode each
// artifact to bytes, decode them back (the file round trip), merge into a
// ready-to-render campaign. Returns total Monte-Carlo runs per second.
func shardMergeThroughput(runs, jobs, shards int) (float64, error) {
	o := rhvpp.DefaultOptions()
	o.SpiceMCRuns = runs
	o.Jobs = jobs
	units, err := rhvpp.PlanUnits(o, rhvpp.StudySpiceMC)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	start := time.Now()
	arts := make([]*rhvpp.ShardArtifact, shards)
	for i := range arts {
		part, err := rhvpp.ShardUnits(units, i, shards)
		if err != nil {
			return 0, err
		}
		art, err := rhvpp.RunShard(ctx, o, i, shards, part)
		if err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := rhvpp.EncodeArtifact(&buf, art); err != nil {
			return 0, err
		}
		if arts[i], err = rhvpp.DecodeArtifact(&buf); err != nil {
			return 0, err
		}
	}
	if _, err := rhvpp.MergeArtifacts(arts...); err != nil {
		return 0, err
	}
	total := float64(len(units) * runs)
	return total / time.Since(start).Seconds(), nil
}

// mcAggregate measures the streaming aggregation pipeline end to end: a
// multi-level sweep through the single global run queue, reporting runs/s
// and heap bytes allocated per run.
func mcAggregate(runs, jobs int) (runsPerSec, bytesPerRun float64, levels int, err error) {
	vpps := []float64{2.5, 2.1, 1.9, 1.7}
	cfg := spice.MCConfig{Runs: runs, Seed: 2022, Variation: 0.05, Jobs: jobs}
	ctx := context.Background()
	warm := cfg
	warm.Runs = 2
	if _, err := spice.RunMonteCarloSweep(ctx, vpps, warm); err != nil {
		return 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := spice.RunMonteCarloSweep(ctx, vpps, cfg); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	total := float64(len(vpps) * runs)
	return total / elapsed, float64(after.TotalAlloc-before.TotalAlloc) / total, len(vpps), nil
}

// stepCost times activations until ~100ms has elapsed and returns ns/step.
func stepCost(sim func(spice.CellParams, spice.Probe) (spice.ActivationResult, error)) (float64, error) {
	p := spice.DefaultCellParams(2.5)
	steps := 0
	start := time.Now()
	for time.Since(start) < 100*time.Millisecond {
		if _, err := sim(p, func(_, _, _ float64) { steps++ }); err != nil {
			return 0, err
		}
	}
	if steps == 0 {
		return 0, fmt.Errorf("no steps executed")
	}
	return float64(time.Since(start).Nanoseconds()) / float64(steps), nil
}

// mcThroughput returns Monte-Carlo runs per second for the configuration.
func mcThroughput(cfg spice.MCConfig) (float64, error) {
	cfg.VPP, cfg.Seed, cfg.Variation = 2.0, 2022, 0.05
	if _, err := spice.MonteCarlo(cfg.VPP, 2, cfg.Seed, cfg.Variation); err != nil { // warm-up
		return 0, err
	}
	start := time.Now()
	if _, err := spice.RunMonteCarlo(context.Background(), cfg); err != nil {
		return 0, err
	}
	return float64(cfg.Runs) / time.Since(start).Seconds(), nil
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
