// Command spicebench measures the SPICE solver's headline throughput —
// transient steps per second and Monte-Carlo runs per second, incremental
// engine vs the dense finite-difference reference — and writes a JSON
// snapshot. CI runs it on every change so the perf trajectory of the
// hottest path in the repository is recorded next to the code
// (BENCH_spice.json at the repository root holds the latest committed
// snapshot).
//
//	spicebench -out BENCH_spice.json
//	spicebench -runs 64 -jobs 4
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/dramstudy/rhvpp"
	"github.com/dramstudy/rhvpp/internal/spice"
)

// Snapshot is the serialized benchmark result.
type Snapshot struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Transient-step throughput on the Table 2 netlist at nominal VPP.
	// "Per step" means per base-grid cell covered, so the adaptive figure
	// folds the coarse-stepping reduction in.
	StepNSAdaptive    float64 `json:"transient_step_ns_adaptive"`
	StepNSIncremental float64 `json:"transient_step_ns_incremental"`
	StepNSReference   float64 `json:"transient_step_ns_reference"`
	StepSpeedup       float64 `json:"transient_step_speedup"`
	StepSpeedupAdapt  float64 `json:"transient_step_speedup_adaptive"`

	// Adaptive step-count reduction over the Fig. 8a/9a sweep (all nine
	// VPP levels): implicit solves saved overall, and cells-per-solve on
	// the quiescent stretches alone (the accepted coarse steps) — the
	// acceptance floor for the latter is 3x.
	AdaptiveStepReduction      float64 `json:"adaptive_step_reduction_sweep"`
	AdaptiveQuiescentReduction float64 `json:"adaptive_quiescent_step_reduction"`

	// Monte-Carlo campaign throughput at 2.0 V, ±5% variation. The jobs1
	// figure runs the default adaptive engine (which batches
	// spice.DefaultBatchWidth lanes in lockstep); the fixed-grid variant is
	// the A/B at the same worker count (2.0 V has a short quiescent tail,
	// so the adaptive win concentrates in the lower-VPP levels that
	// dominate the real sweep — see mc_agg_runs_per_sec).
	MCRunsPerSecReference  float64 `json:"mc_runs_per_sec_serial_reference"`
	MCRunsPerSecJobs1Fixed float64 `json:"mc_runs_per_sec_jobs1_fixed_grid"`
	MCRunsPerSecJobs1      float64 `json:"mc_runs_per_sec_jobs1"`
	MCRunsPerSecJobs       float64 `json:"mc_runs_per_sec_jobs"`
	MCJobs                 int     `json:"mc_jobs"`
	MCSpeedupJobs1         float64 `json:"mc_speedup_jobs1_vs_reference"`
	MCSpeedupJobs          float64 `json:"mc_speedup_jobs_vs_reference"`

	// Batched lockstep engine A/B at one worker: the explicit
	// default-width lockstep path vs the scalar path (BatchWidth 1), both
	// best-of-3 so a single scheduler stall cannot invert the ratio, plus a
	// width sweep over the power-of-two lane counts. Lanes replicate the
	// scalar float-op sequence bit-for-bit, so these differ only in
	// throughput, never in output.
	MCRunsPerSecJobs1Batched float64      `json:"mc_runs_per_sec_jobs1_batched"`
	MCRunsPerSecJobs1Scalar  float64      `json:"mc_runs_per_sec_jobs1_scalar"`
	MCBatchSpeedupVsScalar   float64      `json:"mc_batch_speedup_vs_scalar"`
	MCBatchWidthSweep        []widthPoint `json:"mc_batch_width_sweep,omitempty"`

	// Full Fig. 8b/9b-style aggregate: one global run queue across a VPP
	// sweep, streaming aggregation, per-worker workspace reuse. BytesPerRun
	// is total heap allocation divided by runs — the streaming-statistics
	// memory-bound metric (pre-streaming, aggregation bytes grew with every
	// retained sample; now the bytes are simulation transients only).
	MCAggRunsPerSec  float64 `json:"mc_agg_runs_per_sec"`
	MCAggLevels      int     `json:"mc_agg_levels"`
	MCAggBytesPerRun float64 `json:"mc_agg_bytes_per_run"`

	// Sharded campaign pipeline end to end: the full SPICE Monte-Carlo study
	// split into 2 shard artifacts (plan -> run -> encode), file-decoded and
	// merged back into a rendered-ready campaign. Runs/s over the whole
	// pipeline, so the serialization + merge overhead of sharding is visible
	// next to the raw in-process MC throughput above.
	ShardMergeRunsPerSec float64 `json:"shard_merge_runs_per_sec"`
	ShardMergeShards     int     `json:"shard_merge_shards"`

	// DetlintNSPerPkg is the static-analysis suite's cost (wall time per
	// package of a clean full-repo run), recorded by `detlint -bench` into
	// the same snapshot. spicebench does not measure it; it carries the
	// last recorded value through its own rewrites so the field survives a
	// baseline refresh.
	DetlintNSPerPkg float64 `json:"detlint_ns_per_pkg,omitempty"`
	// DetlintAnalyzerNSPerPkg is the per-analyzer breakdown of the same
	// run, keyed by analyzer name; carried through rewrites like the
	// total.
	DetlintAnalyzerNSPerPkg map[string]float64 `json:"detlint_analyzer_ns_per_pkg,omitempty"`
}

func main() {
	var (
		out  = flag.String("out", "", "write the JSON snapshot to this file (default stdout)")
		runs = flag.Int("runs", 48, "Monte-Carlo runs per measurement")
		jobs = flag.Int("jobs", 4, "worker count for the parallel Monte-Carlo measurement")
	)
	flag.Parse()

	snap, err := measure(*runs, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicebench:", err)
		os.Exit(1)
	}
	if *out != "" {
		// Refreshing a committed baseline must not drop the fields other
		// tools recorded into it (detlint -bench).
		if prev, err := os.ReadFile(*out); err == nil {
			var old Snapshot
			if json.Unmarshal(prev, &old) == nil {
				snap.DetlintNSPerPkg = old.DetlintNSPerPkg
				snap.DetlintAnalyzerNSPerPkg = old.DetlintAnalyzerNSPerPkg
			}
		}
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicebench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintln(os.Stderr, "spicebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "spicebench:", err)
		os.Exit(1)
	}
}

func measure(runs, jobs int) (Snapshot, error) {
	snap := Snapshot{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		MCJobs:    jobs,
	}

	// Transient step cost: one full nominal-VPP activation per engine,
	// repeated until the measurement is stable enough to quote.
	var err error
	snap.StepNSAdaptive, err = stepCost(spice.SimulateActivation)
	if err != nil {
		return snap, err
	}
	snap.StepNSIncremental, err = stepCost(fixedGridActivation)
	if err != nil {
		return snap, err
	}
	snap.StepNSReference, err = stepCost(spice.SimulateActivationReference)
	if err != nil {
		return snap, err
	}
	snap.StepSpeedup = ratio(snap.StepNSReference, snap.StepNSIncremental)
	snap.StepSpeedupAdapt = ratio(snap.StepNSReference, snap.StepNSAdaptive)

	snap.AdaptiveStepReduction, snap.AdaptiveQuiescentReduction, err = adaptiveReduction()
	if err != nil {
		return snap, err
	}

	ref, err := mcThroughput(spice.MCConfig{Runs: runs, Jobs: 1, Reference: true})
	if err != nil {
		return snap, err
	}
	snap.MCRunsPerSecJobs1Fixed, err = mcThroughput(spice.MCConfig{Runs: runs, Jobs: 1, FixedGrid: true})
	if err != nil {
		return snap, err
	}
	one, err := bestOf(3, spice.MCConfig{Runs: runs, Jobs: 1})
	if err != nil {
		return snap, err
	}
	many, err := mcThroughput(spice.MCConfig{Runs: runs, Jobs: jobs})
	if err != nil {
		return snap, err
	}
	snap.MCRunsPerSecReference = ref
	snap.MCRunsPerSecJobs1 = one
	snap.MCRunsPerSecJobs = many
	snap.MCSpeedupJobs1 = ratio(one, ref)
	snap.MCSpeedupJobs = ratio(many, ref)

	snap.MCRunsPerSecJobs1Batched, err = bestOf(3, spice.MCConfig{Runs: runs, Jobs: 1, BatchWidth: spice.DefaultBatchWidth})
	if err != nil {
		return snap, err
	}
	snap.MCRunsPerSecJobs1Scalar, err = bestOf(3, spice.MCConfig{Runs: runs, Jobs: 1, BatchWidth: 1})
	if err != nil {
		return snap, err
	}
	snap.MCBatchSpeedupVsScalar = ratio(snap.MCRunsPerSecJobs1Batched, snap.MCRunsPerSecJobs1Scalar)
	for _, w := range []int{1, 2, 4, 8, 16} {
		rate, err := bestOf(2, spice.MCConfig{Runs: runs, Jobs: 1, BatchWidth: w})
		if err != nil {
			return snap, err
		}
		snap.MCBatchWidthSweep = append(snap.MCBatchWidthSweep, widthPoint{Width: w, RunsPerSec: rate})
	}

	aggRate, aggBytes, levels, err := mcAggregate(runs, jobs)
	if err != nil {
		return snap, err
	}
	snap.MCAggRunsPerSec = aggRate
	snap.MCAggBytesPerRun = aggBytes
	snap.MCAggLevels = levels

	snap.ShardMergeShards = 2
	snap.ShardMergeRunsPerSec, err = shardMergeThroughput(runs, jobs, snap.ShardMergeShards)
	if err != nil {
		return snap, err
	}
	return snap, nil
}

// shardMergeThroughput times the sharded-campaign pipeline end to end for
// the SPICE Monte-Carlo study: plan units, execute each shard, encode each
// artifact to bytes, decode them back (the file round trip), merge into a
// ready-to-render campaign. Returns total Monte-Carlo runs per second.
func shardMergeThroughput(runs, jobs, shards int) (float64, error) {
	o := rhvpp.DefaultOptions()
	o.SpiceMCRuns = runs
	o.Jobs = jobs
	units, err := rhvpp.PlanUnits(o, rhvpp.StudySpiceMC)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	start := time.Now() //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
	arts := make([]*rhvpp.ShardArtifact, shards)
	for i := range arts {
		part, err := rhvpp.ShardUnits(units, i, shards)
		if err != nil {
			return 0, err
		}
		art, err := rhvpp.RunShard(ctx, o, i, shards, part)
		if err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := rhvpp.EncodeArtifact(&buf, art); err != nil {
			return 0, err
		}
		if arts[i], err = rhvpp.DecodeArtifact(&buf); err != nil {
			return 0, err
		}
	}
	if _, err := rhvpp.MergeArtifacts(arts...); err != nil {
		return 0, err
	}
	total := float64(len(units) * runs)
	return total / time.Since(start).Seconds(), nil //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
}

// mcAggregate measures the streaming aggregation pipeline end to end: a
// multi-level sweep through the single global run queue, reporting runs/s
// and heap bytes allocated per run.
func mcAggregate(runs, jobs int) (runsPerSec, bytesPerRun float64, levels int, err error) {
	vpps := []float64{2.5, 2.1, 1.9, 1.7}
	cfg := spice.MCConfig{Runs: runs, Seed: 2022, Variation: 0.05, Jobs: jobs}
	ctx := context.Background()
	warm := cfg
	warm.Runs = 2
	if _, err := spice.RunMonteCarloSweep(ctx, vpps, warm); err != nil {
		return 0, 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
	if _, err := spice.RunMonteCarloSweep(ctx, vpps, cfg); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start).Seconds() //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
	runtime.ReadMemStats(&after)
	total := float64(len(vpps) * runs)
	return total / elapsed, float64(after.TotalAlloc-before.TotalAlloc) / total, len(vpps), nil
}

// fixedGridActivation is SimulateActivation pinned to the fixed 25 ps grid.
func fixedGridActivation(p spice.CellParams, probe spice.Probe) (spice.ActivationResult, error) {
	p.Adaptive = spice.AdaptiveConfig{}
	return spice.SimulateActivation(p, probe)
}

// stepCost times activations until ~100ms has elapsed and returns wall ns
// per base-grid cell covered (an adaptive engine covers cells with fewer
// solves, so its figure reflects the step-count reduction).
func stepCost(sim func(spice.CellParams, spice.Probe) (spice.ActivationResult, error)) (float64, error) {
	p := spice.DefaultCellParams(2.5)
	cells := 0
	start := time.Now()                            //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
	for time.Since(start) < 100*time.Millisecond { //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
		res, err := sim(p, nil)
		if err != nil {
			return 0, err
		}
		cells += res.Steps.Cells
	}
	if cells == 0 {
		return 0, fmt.Errorf("no steps executed")
	}
	return float64(time.Since(start).Nanoseconds()) / float64(cells), nil //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
}

// adaptiveReduction aggregates the adaptive engine's step accounting over
// the Fig. 8a/9a sweep: total solve reduction vs the fixed grid, and
// cells-per-solve over the accepted coarse steps (the quiescent stretches).
func adaptiveReduction() (overall, quiescent float64, err error) {
	vpps := []float64{2.5, 2.4, 2.3, 2.2, 2.1, 2.0, 1.9, 1.8, 1.7}
	var solves, cells, coarseCells, coarseSolves int
	for _, vpp := range vpps {
		res, err := spice.SimulateActivation(spice.DefaultCellParams(vpp), nil)
		if err != nil {
			return 0, 0, fmt.Errorf("adaptive sweep at %.1fV: %w", vpp, err)
		}
		solves += res.Steps.Solves
		cells += res.Steps.Cells
		coarseCells += res.Steps.CoarseCells
		coarseSolves += res.Steps.CoarseSolves
	}
	return ratio(float64(cells), float64(solves)),
		ratio(float64(coarseCells), float64(coarseSolves)), nil
}

// widthPoint is one lane-count sample of the batch-width sweep.
type widthPoint struct {
	Width      int     `json:"width"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// bestOf returns the fastest of n mcThroughput measurements: batch-vs-scalar
// is a ratio of two ~second-long wall-clock timings, and on a busy machine a
// single descheduling stall in either leg would dominate the comparison.
func bestOf(n int, cfg spice.MCConfig) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		rate, err := mcThroughput(cfg)
		if err != nil {
			return 0, err
		}
		if rate > best {
			best = rate
		}
	}
	return best, nil
}

// mcThroughput returns Monte-Carlo runs per second for the configuration.
func mcThroughput(cfg spice.MCConfig) (float64, error) {
	cfg.VPP, cfg.Seed, cfg.Variation = 2.0, 2022, 0.05
	if _, err := spice.MonteCarlo(cfg.VPP, 2, cfg.Seed, cfg.Variation); err != nil { // warm-up
		return 0, err
	}
	start := time.Now() //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
	if _, err := spice.RunMonteCarlo(context.Background(), cfg); err != nil {
		return 0, err
	}
	return float64(cfg.Runs) / time.Since(start).Seconds(), nil //detlint:ignore detsource spicebench measures wall-clock throughput; timing is its output, not simulated state
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
