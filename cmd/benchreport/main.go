// Command benchreport renders the repository's performance trajectory — the
// committed spicebench snapshots of past PRs (bench/history.json) plus the
// current BENCH_spice.json — as the markdown table embedded in docs/PERF.md,
// and verifies in CI that the committed table has not drifted from the
// committed numbers.
//
//	benchreport            # print the table to stdout
//	benchreport -write     # rewrite the table block inside docs/PERF.md
//	benchreport -check     # exit non-zero if docs/PERF.md is stale
//
// The table lives between the markers
//
//	<!-- benchreport:begin -->
//	<!-- benchreport:end -->
//
// and everything outside them is hand-written prose, untouched by -write.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// metric describes one table column: its JSON key in a spicebench snapshot
// and how to format it. Snapshots are decoded as generic maps so rows from
// before a metric existed simply render as "—" instead of breaking decode.
type metric struct {
	key, header, unit string
	digits            int
}

// metrics are the trajectory columns, in presentation order.
var metrics = []metric{
	{"transient_step_ns_incremental", "ns/step (fixed)", "", 0},
	{"transient_step_ns_adaptive", "ns/step (adaptive)", "", 0},
	{"adaptive_quiescent_step_reduction", "quiescent step cut", "x", 2},
	{"mc_runs_per_sec_jobs1", "MC runs/s", "", 0},
	{"mc_batch_speedup_vs_scalar", "batch vs scalar", "x", 2},
	{"mc_agg_runs_per_sec", "MC agg runs/s", "", 0},
	{"mc_agg_bytes_per_run", "bytes/run", "", 0},
	{"shard_merge_runs_per_sec", "shard-merge runs/s", "", 0},
	{"detlint_ns_per_pkg", "detlint ns/pkg", "", 0},
}

const (
	beginMarker = "<!-- benchreport:begin -->"
	endMarker   = "<!-- benchreport:end -->"
	headLabel   = "HEAD (BENCH_spice.json)"
)

type historyEntry struct {
	Label    string                 `json:"label"`
	Snapshot map[string]interface{} `json:"snapshot"`
}

func main() {
	var (
		benchPath   = flag.String("bench", "BENCH_spice.json", "current spicebench snapshot")
		historyPath = flag.String("history", "bench/history.json", "labeled snapshots of past PRs")
		perfPath    = flag.String("perf", "docs/PERF.md", "performance document holding the generated table")
		write       = flag.Bool("write", false, "rewrite the table block inside -perf")
		check       = flag.Bool("check", false, "verify the -perf table matches the committed snapshots")
	)
	flag.Parse()
	if err := run(*benchPath, *historyPath, *perfPath, *write, *check); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(benchPath, historyPath, perfPath string, write, check bool) error {
	table, err := render(benchPath, historyPath)
	if err != nil {
		return err
	}
	switch {
	case write:
		return rewrite(perfPath, table)
	case check:
		return verify(perfPath, table)
	default:
		fmt.Print(table)
		return nil
	}
}

// render produces the markdown table from the history entries plus the
// current snapshot.
func render(benchPath, historyPath string) (string, error) {
	var entries []historyEntry
	if err := decodeFile(historyPath, &entries); err != nil {
		return "", err
	}
	var head map[string]interface{}
	if err := decodeFile(benchPath, &head); err != nil {
		return "", err
	}
	entries = append(entries, historyEntry{Label: headLabel, Snapshot: head})

	var b strings.Builder
	b.WriteString("| change |")
	for _, m := range metrics {
		fmt.Fprintf(&b, " %s |", m.header)
	}
	b.WriteString("\n|---|")
	for range metrics {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "| %s |", e.Label)
		for _, m := range metrics {
			b.WriteString(" " + formatCell(e.Snapshot, m) + " |")
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

func formatCell(snap map[string]interface{}, m metric) string {
	v, ok := snap[m.key].(float64)
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%.*f%s", m.digits, v, m.unit)
}

func decodeFile(path string, into interface{}) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// splitDoc separates the document into prose-before, generated block, and
// prose-after.
func splitDoc(doc string) (before, block, after string, err error) {
	i := strings.Index(doc, beginMarker)
	j := strings.Index(doc, endMarker)
	if i < 0 || j < 0 || j < i {
		return "", "", "", fmt.Errorf("markers %q / %q not found in order", beginMarker, endMarker)
	}
	i += len(beginMarker)
	return doc[:i], doc[i:j], doc[j:], nil
}

func rewrite(perfPath, table string) error {
	raw, err := os.ReadFile(perfPath)
	if err != nil {
		return err
	}
	before, _, after, err := splitDoc(string(raw))
	if err != nil {
		return fmt.Errorf("%s: %w", perfPath, err)
	}
	return os.WriteFile(perfPath, []byte(before+"\n"+table+after), 0o644)
}

func verify(perfPath, table string) error {
	raw, err := os.ReadFile(perfPath)
	if err != nil {
		return err
	}
	_, block, _, err := splitDoc(string(raw))
	if err != nil {
		return fmt.Errorf("%s: %w", perfPath, err)
	}
	if strings.TrimSpace(block) != strings.TrimSpace(table) {
		return fmt.Errorf("%s is stale relative to BENCH_spice.json/bench history — run `go run ./cmd/benchreport -write` and commit the result", perfPath)
	}
	return nil
}
