// Command spicesim runs the standalone circuit-level study: the DRAM cell /
// bitline / sense-amplifier netlist of the paper's Table 2 under a chosen
// wordline voltage, printing either the transient waveform (Figs. 8a/9a) or
// a Monte-Carlo latency distribution (Figs. 8b/9b).
//
//	spicesim -vpp 1.8 -waveform
//	spicesim -vpp 1.7 -runs 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dramstudy/rhvpp/internal/report"
	"github.com/dramstudy/rhvpp/internal/spice"
)

func main() {
	var (
		vpp      = flag.Float64("vpp", 2.5, "wordline voltage (V)")
		waveform = flag.Bool("waveform", false, "print the transient waveform instead of Monte Carlo")
		runs     = flag.Int("runs", 500, "Monte-Carlo runs")
		seed     = flag.Uint64("seed", 2022, "Monte-Carlo seed")
		varPct   = flag.Float64("variation", 5, "component variation (percent)")
	)
	flag.Parse()

	if *waveform {
		fmt.Printf("# t(ns)  Vbitline(V)  Vcell(V)   [VPP=%.2fV]\n", *vpp)
		step := 0
		p := spice.DefaultCellParams(*vpp)
		// The printed trace decimates assuming uniform 25 ps samples, so
		// integrate the dense fixed grid (adaptive stepping probes only at
		// accepted, non-uniformly spaced endpoints).
		p.Adaptive = spice.AdaptiveConfig{}
		_, err := spice.SimulateActivation(p, func(tNS, vbl, vcell float64) {
			if step%20 == 0 {
				fmt.Printf("%7.2f  %8.4f  %8.4f\n", tNS, vbl, vcell)
			}
			step++
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "spicesim:", err)
			os.Exit(1)
		}
		return
	}

	res, err := spice.MonteCarlo(*vpp, *runs, *seed, *varPct/100)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spicesim:", err)
		os.Exit(1)
	}
	fmt.Printf("VPP = %.2fV, %d runs, ±%.0f%% variation\n", *vpp, res.Runs, *varPct)
	fmt.Printf("reliable activations: %.1f%% (%d unreliable, %d unrestored, %d no-converge)\n",
		res.ReliableFraction()*100, res.Unreliable, res.Unrestored, res.NoConverge)
	t := report.NewSummaryTable("latency distributions (ns), from the streaming campaign accumulators")
	if s, err := res.TRCDmin.Summary(); err == nil {
		t.AddSummary("tRCDmin", s)
	}
	if s, err := res.TRASmin.Summary(); err == nil {
		t.AddSummary("tRASmin", s)
	}
	if len(t.Rows) > 0 {
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spicesim:", err)
			os.Exit(1)
		}
	}
}
