package rhvpp

import (
	"github.com/dramstudy/rhvpp/internal/mitigation"
)

// Safe-operation API: the mitigations §8 of the paper proposes for running
// DRAM at reduced VPP — SECDED ECC, selective double-rate refresh, and
// VPP-aware provisioning of RowHammer defenses.

// RefreshPlan assigns a doubled refresh rate to retention-weak rows.
type RefreshPlan = mitigation.RefreshPlan

// ECCStats summarizes corrections performed by the SECDED data path during
// one row read.
type ECCStats = mitigation.ReadStats

// BuildRefreshPlan profiles the given rows with the Alg. 3 retention sweep
// and returns the plan that refreshes rows failing at the nominal window
// twice as often (Obsv. 15: only a small fraction of rows needs this).
func (l *Lab) BuildRefreshPlan(rows []int, nominalWindowMS float64) (RefreshPlan, error) {
	var results []RetentionResult
	for _, row := range rows {
		res, err := l.tester.RetentionSweep(row, 0)
		if err != nil {
			return RefreshPlan{}, err
		}
		results = append(results, res)
	}
	return mitigation.BuildRefreshPlan(results, nominalWindowMS), nil
}

// VerifyRefreshPlan replays the plan against the device and returns how many
// rows still flipped (0 = the plan eliminates all retention errors).
func (l *Lab) VerifyRefreshPlan(plan RefreshPlan, rows []int) (int, error) {
	return mitigation.Verify(l.tester, plan, rows, 0xAA)
}

// ECCRetentionCheck initializes the given rows through a SECDED(72,64) data
// path, waits one refresh window, and reads them back with correction. It
// returns the total corrected and uncorrectable word counts and whether
// every delivered row was clean.
func (l *Lab) ECCRetentionCheck(rows []int, windowMS float64) (stats ECCStats, clean bool, err error) {
	e := mitigation.NewECCController(l.tb.Controller, l.tester.Config().Bank)
	clean = true
	const fill = 0xAA
	for _, row := range rows {
		if err := e.InitializeRow(row, fill); err != nil {
			return stats, false, err
		}
		if err := e.Controller().WaitMS(windowMS); err != nil {
			return stats, false, err
		}
		data, st, err := e.ReadRow(row)
		if err != nil {
			return stats, false, err
		}
		stats.Corrected += st.Corrected
		stats.Uncorrectable += st.Uncorrectable
		for _, b := range data {
			if b != fill {
				clean = false
				break
			}
		}
	}
	return stats, clean, nil
}

// PARARequiredP returns the refresh probability the PARA defense needs to
// bound RowHammer attack success by target on a device with the given
// HCfirst. Reduced VPP raises HCfirst and therefore lowers the required
// probability (and refresh overhead).
func PARARequiredP(hcFirst, target float64) (float64, error) {
	return mitigation.RequiredP(hcFirst, target)
}

// GrapheneCounters returns the Misra-Gries counter budget a Graphene-style
// tracker needs for the given activation window and HCfirst.
func GrapheneCounters(activationsPerWindow, hcFirst, safetyDiv float64) int {
	return mitigation.CountersRequired(activationsPerWindow, hcFirst, safetyDiv)
}

// RecommendedVPPPolicy applies the Table 3 operating-point policy to a
// measured sweep (argmax HCfirst, ties to lower BER then lower voltage).
func RecommendedVPPPolicy(vpps, hcFirst, ber []float64) (float64, int, error) {
	return mitigation.RecommendVPP(vpps, hcFirst, ber)
}
