package rhvpp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/dramstudy/rhvpp/internal/artifact"
	"github.com/dramstudy/rhvpp/internal/experiments"
)

// ProgressEvent reports one step of a running study: a study announcement
// (Key == "", Done == 0) when execution begins, then one event per completed
// work unit with the study's cumulative completion count. Events carry no
// wall-clock timestamps — progress, like everything else the campaign emits,
// is a pure function of the options and the execution state.
type ProgressEvent struct {
	// Study is the canonical study name ("rowhammer", "spice-mc", ...).
	Study string `json:"study"`
	// Key is the completed unit's key (module label or formatted VPP level),
	// or "" for the study-start announcement.
	Key string `json:"key,omitempty"`
	// Done counts the study's completed units so far.
	Done int `json:"done"`
	// Total is the study's unit count under these options.
	Total int `json:"total"`
}

// ProgressFunc receives progress events. Module-sweep events fire from the
// worker pool's goroutines, so implementations must be safe for concurrent
// calls; events for one study arrive in completion order, which is NOT the
// catalog order the results fold in.
type ProgressFunc func(ProgressEvent)

// ObservedRunner is optionally implemented by execution backends that can
// report per-unit completion while RunStudy executes. Campaign.WithProgress
// uses it when the configured Runner provides it; for plain Runners the
// campaign falls back to emitting every unit's event after RunStudy returns,
// so progress consumers still see a complete (if bursty) event stream.
type ObservedRunner interface {
	Runner
	// RunStudyObserved is RunStudy plus a completion hook; the returned
	// results must be byte-identical to a RunStudy call.
	RunStudyObserved(ctx context.Context, o Options, study Study, units []WorkUnit, onUnit func(WorkUnit)) ([]UnitResult, error)
}

// RunStudyObserved implements ObservedRunner on the in-process backend.
func (LocalRunner) RunStudyObserved(ctx context.Context, o Options, study Study, units []WorkUnit, onUnit func(WorkUnit)) ([]UnitResult, error) {
	payloads, err := experiments.RunUnitsObserved(ctx, o, string(study), units, onUnit)
	if err != nil {
		return nil, err
	}
	out := make([]UnitResult, len(units))
	for i, u := range units {
		out[i] = UnitResult{Unit: u, Data: payloads[i]}
	}
	return out, nil
}

// WithProgress installs a progress hook for studies that have not run yet
// and returns c for chaining. Call it before the first Run, like WithRunner.
// The hook observes execution only; installing one never changes a byte of
// what the campaign reports.
func (c *Campaign) WithProgress(fn ProgressFunc) *Campaign {
	c.progress = fn
	return c
}

// execUnits hands one study's units to the configured Runner, threading the
// campaign's progress hook through backends that support it.
func (c *Campaign) execUnits(ctx context.Context, s Study, units []WorkUnit) ([]UnitResult, error) {
	fn := c.progress
	if fn == nil {
		return c.runner.RunStudy(ctx, c.opts, s, units)
	}
	fn(ProgressEvent{Study: string(s), Total: len(units)})
	var done atomic.Int64
	onUnit := func(u WorkUnit) {
		fn(ProgressEvent{Study: string(s), Key: u.Key, Done: int(done.Add(1)), Total: len(units)})
	}
	if or, ok := c.runner.(ObservedRunner); ok {
		return or.RunStudyObserved(ctx, c.opts, s, units, onUnit)
	}
	results, err := c.runner.RunStudy(ctx, c.opts, s, units)
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		onUnit(r.Unit)
	}
	return results, nil
}

// RunShardObserved is RunShard with a per-unit completion hook — the
// execution path `rhvpp serve` computes (and streams progress for) a study
// on a cache miss. A nil onUnit is exactly RunShard.
func RunShardObserved(ctx context.Context, o Options, shard, of int, units []WorkUnit, onUnit func(WorkUnit)) (*ShardArtifact, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	opts, err := canonicalOptions(o)
	if err != nil {
		return nil, err
	}
	art, err := artifact.New(shard, of, opts)
	if err != nil {
		return nil, err
	}
	// Group by study, preserving unit order within each study; execute each
	// study's units through the local backend.
	byStudy := make(map[string][]WorkUnit)
	var order []string
	for _, u := range units {
		if _, ok := byStudy[u.Study]; !ok {
			order = append(order, u.Study)
		}
		byStudy[u.Study] = append(byStudy[u.Study], u)
	}
	for _, study := range order {
		su := byStudy[study]
		payloads, err := experiments.RunUnitsObserved(ctx, o, study, su, onUnit)
		if err != nil {
			return nil, fmt.Errorf("rhvpp: shard %d/%d study %s: %w", shard, of, study, err)
		}
		for i, raw := range payloads {
			art.Units = append(art.Units, artifact.Unit{
				Study: su[i].Study, Key: su[i].Key, Index: su[i].Index, Data: raw,
			})
		}
	}
	return art, nil
}

// OptionsFingerprint returns the canonical options fingerprint: the SHA-256
// of the canonical options encoding, in lowercase hex. It is the
// content-address of a campaign — shard artifacts embed the same canonical
// encoding, and the artifact store keys completed studies by this digest.
// Execution-shape knobs (Jobs, SpiceBatchWidth) are excluded exactly as they
// are from shard artifacts, so requests differing only in worker count or
// lane width share one fingerprint, one computation, and one store entry.
func OptionsFingerprint(o Options) (string, error) {
	raw, err := canonicalOptions(o)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// ArtifactStore is the content-addressed on-disk store of completed shard
// artifacts, keyed by OptionsFingerprint; see internal/artifact.
type ArtifactStore = artifact.Store

// Store errors, re-exported for callers distinguishing a cache miss from a
// damaged entry.
var (
	ErrArtifactNotFound = artifact.ErrNotFound
	ErrArtifactCorrupt  = artifact.ErrCorrupt
)

// OpenArtifactStore opens (creating if needed) a content-addressed artifact
// store rooted at dir, sweeping any partially-written temp files a crashed
// writer left behind.
func OpenArtifactStore(dir string) (*ArtifactStore, error) { return artifact.OpenStore(dir) }

// CachedCampaign returns a Campaign for o backed by the artifact store: a
// stored artifact at o's fingerprint is decoded and preloaded (fromStore
// true, no study recomputed); otherwise the full shardable plan executes
// in-process — reporting per-unit completion through onUnit — and the
// complete artifact persists to the store before the campaign returns. A
// corrupt store entry is treated as a miss and overwritten by the fresh
// computation, so one damaged file degrades a daemon to a recompute instead
// of wedging the fingerprint. With a nil store it always computes.
//
// The returned campaign memoizes like any other: the deliberately-local
// waveform study (and nothing else) computes on first render.
func CachedCampaign(ctx context.Context, o Options, st *ArtifactStore, onUnit func(WorkUnit)) (c *Campaign, fromStore bool, err error) {
	if err := o.Validate(); err != nil {
		return nil, false, err
	}
	fp, err := OptionsFingerprint(o)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		art, err := st.Get(fp)
		switch {
		case err == nil:
			c, err := MergeArtifacts(art)
			if err != nil {
				return nil, false, fmt.Errorf("rhvpp: stored artifact %s: %w", fp, err)
			}
			return c, true, nil
		case errors.Is(err, ErrArtifactNotFound), errors.Is(err, ErrArtifactCorrupt):
			// Miss either way: recompute, and overwrite the damaged entry.
		default:
			return nil, false, err
		}
	}
	units, err := PlanUnits(o)
	if err != nil {
		return nil, false, err
	}
	art, err := RunShardObserved(ctx, o, 0, 1, units, onUnit)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		if err := st.Put(fp, art); err != nil {
			return nil, false, fmt.Errorf("rhvpp: persisting campaign %s: %w", fp, err)
		}
	}
	c, err = MergeArtifacts(art)
	if err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// PresetOptions resolves a campaign preset by name: "" or "default" (the
// laptop-scale campaign), "paper" (the full-scale parameters), or "golden"
// (the pinned regression scope behind testdata/golden). The CLI's -preset
// flag and the serve API's preset query parameter both resolve through here,
// so they name exactly the same campaigns.
func PresetOptions(name string) (Options, error) {
	switch name {
	case "", "default":
		return DefaultOptions(), nil
	case "paper":
		return PaperOptions(), nil
	case "golden":
		return GoldenOptions(), nil
	}
	return Options{}, fmt.Errorf("unknown preset %q (known: default, paper, golden)", name)
}

// LookupExperiment resolves an experiment id or returns the canonical
// unknown-id error — the one Campaign.Run returns and the CLI prints, so
// every surface rejects a bad id with the same words.
func LookupExperiment(id string) (Experiment, error) {
	e, ok := ExperimentByID(id)
	if !ok {
		return Experiment{}, fmt.Errorf("rhvpp: unknown experiment %q (known: %v)", id, ExperimentNames())
	}
	return e, nil
}
